"""Module-level call graph and per-function summaries.

The CFG and dataflow solver are intraprocedural; this layer lifts
their results across function boundaries *within one module* — which
is exactly the scope that matters for the flow passes: sweep workers
and their helpers live in one module, and seed plumbing rarely crosses
modules without going through an explicit config object.

Two summaries are computed on demand and cached:

* **Return taint** — the taint labels a function's return value may
  carry, so ``seed = fresh_seed()`` taints ``seed`` when
  ``fresh_seed`` reads the wall clock.  Computed by running the taint
  analysis over the helper's own CFG, iterated to a fixpoint so
  helper-calls-helper chains (and cycles) converge.
* **External mutations** — the stores a function performs outside its
  own local scope: module globals (``global x`` or ``STATE[...] =``),
  class attributes of module-level classes, and closed-over variables
  of an enclosing function.  The sweep-race pass combines these with
  the call graph to check everything a submitted worker *transitively*
  mutates.

Scope resolution is a deliberate simplification of Python's rules:
a function's locals are its parameters plus every name it binds
(minus ``global``/``nonlocal`` declarations); anything bound by an
enclosing function is a closure name; anything bound at module level
is a global.  Class bodies nested in functions are treated as part of
the function's scope, and attribute stores on ``self``/parameters are
*not* external (mutating an argument stays within the task).
"""

import ast

from repro.lint.flow.cfg import build_cfg
from repro.lint.flow.dataflow import bindings, own_expressions, target_names

_EMPTY = frozenset()

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "clear", "remove", "discard", "appendleft",
    "extendleft", "sort", "reverse",
})


class Mutation:
    """One store a function performs outside its local scope."""

    __slots__ = ("kind", "name", "lineno", "func")

    def __init__(self, kind, name, lineno, func):
        self.kind = kind      # "global" | "closure" | "class-attr"
        self.name = name      # the shared name being stored to
        self.lineno = lineno
        self.func = func      # name of the function doing the store

    def describe(self):
        """Human-readable description of the mutated target."""
        what = {
            "global": f"module global {self.name!r}",
            "closure": f"closed-over variable {self.name!r}",
            "class-attr": f"class attribute of {self.name!r}",
        }[self.kind]
        return what


class _FunctionInfo:
    __slots__ = ("node", "locals", "enclosing", "globals", "nonlocals")

    def __init__(self, node, local_names, enclosing, global_decls,
                 nonlocal_decls):
        self.node = node
        self.locals = local_names
        self.enclosing = enclosing
        self.globals = global_decls
        self.nonlocals = nonlocal_decls


def _attribute_root(node):
    """The root ``Name`` of an attribute/subscript chain, or ``None``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _own_statements(body):
    """Statements of a scope, not descending into nested functions."""
    stack = list(body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # separate scope — summarised on its own
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, ast.ExceptHandler):
                yield child
                stack.extend(child.body)


def _argument_names(args):
    names = [a.arg for a in args.posonlyargs] if hasattr(
        args, "posonlyargs") else []
    names += [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


class ModuleSummaries:
    """Call graph plus lazily computed summaries for one module."""

    def __init__(self, tree):
        self.tree = tree
        self.functions = {}        # name -> _FunctionInfo
        self.module_names = set()  # names bound at module level
        self.module_classes = set()
        self._cfgs = {}
        self._returns = {}
        self._mutations = {}
        self._calls = {}
        self._collect_module()

    # -- collection ----------------------------------------------------

    def _collect_module(self):
        for stmt in _own_statements(self.tree.body):
            for names, _value, _aug in bindings(stmt):
                self.module_names.update(names)
            if isinstance(stmt, ast.ClassDef):
                self.module_classes.add(stmt.name)
        for stmt in self.tree.body:
            self._collect_scope(stmt, frozenset())

    def _collect_scope(self, stmt, enclosing):
        if isinstance(stmt, ast.ClassDef):
            # Methods close over nothing extra at class level.
            for sub in stmt.body:
                self._collect_scope(sub, enclosing)
            return
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, (ast.stmt, ast.ExceptHandler)):
                    self._collect_scope(child, enclosing)
            return
        func = stmt
        local_names = set(_argument_names(func.args))
        global_decls = set()
        nonlocal_decls = set()
        for sub in _own_statements(func.body):
            if isinstance(sub, ast.Global):
                global_decls.update(sub.names)
            elif isinstance(sub, ast.Nonlocal):
                nonlocal_decls.update(sub.names)
            else:
                for names, _value, _aug in bindings(sub):
                    local_names.update(names)
                for expr_node in ast.walk(sub):
                    if isinstance(expr_node, ast.NamedExpr):
                        local_names.update(
                            target_names(expr_node.target)
                        )
        local_names -= global_decls
        local_names -= nonlocal_decls
        info = _FunctionInfo(
            func, frozenset(local_names), frozenset(enclosing),
            frozenset(global_decls), frozenset(nonlocal_decls),
        )
        # Plain name for call-site resolution; later definitions of
        # the same name shadow earlier ones, matching runtime lookup.
        self.functions[func.name] = info
        inner_enclosing = enclosing | local_names
        for sub in func.body:
            self._collect_scope(sub, inner_enclosing)

    # -- call graph ----------------------------------------------------

    def calls(self, func_name):
        """Names of module-local functions *func_name* calls directly."""
        if func_name in self._calls:
            return self._calls[func_name]
        info = self.functions.get(func_name)
        called = set()
        if info is not None:
            for sub in _own_statements(info.node.body):
                for expr in own_expressions(sub):
                    for node in ast.walk(expr):
                        if isinstance(node, ast.Call) and isinstance(
                            node.func, ast.Name
                        ) and node.func.id in self.functions:
                            called.add(node.func.id)
        self._calls[func_name] = called
        return called

    def transitive_closure(self, func_name):
        """*func_name* plus everything it may call, as an ordered list."""
        seen = [func_name]
        index = 0
        while index < len(seen):
            for callee in sorted(self.calls(seen[index])):
                if callee not in seen:
                    seen.append(callee)
            index += 1
        return seen

    def cfg_of(self, func_name):
        """The (cached) CFG of the module-local function *func_name*."""
        if func_name not in self._cfgs:
            self._cfgs[func_name] = build_cfg(
                self.functions[func_name].node
            )
        return self._cfgs[func_name]

    # -- return-taint summaries ----------------------------------------

    def returns_taint(self, dotted_name, analysis):
        """Taint labels the return value of *dotted_name* may carry.

        Only plain module-local function names resolve; dotted callees
        (``np.random.default_rng``, ``self.helper``) return the empty
        set — their taint, if any, comes from the source classifier.
        """
        if dotted_name not in self.functions:
            return _EMPTY
        if dotted_name in self._returns:
            return self._returns[dotted_name]
        # Seed the cache to cut recursion cycles, then iterate this
        # function (and, through taint_of, its callees) to a fixpoint.
        self._returns[dotted_name] = _EMPTY
        while True:
            computed = self._compute_returns(dotted_name, analysis)
            if computed == self._returns[dotted_name]:
                break
            self._returns[dotted_name] = computed
        return self._returns[dotted_name]

    def _compute_returns(self, func_name, analysis):
        cfg = self.cfg_of(func_name)
        states = analysis.solve(cfg)
        labels = set()
        for index in cfg.statement_nodes():
            stmt = cfg.nodes[index]
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                labels |= analysis.taint_of(stmt.value, states[index])
        return frozenset(labels)

    # -- mutation summaries --------------------------------------------

    def direct_mutations(self, func_name):
        """Stores *func_name* itself performs outside its local scope."""
        if func_name in self._mutations:
            return self._mutations[func_name]
        info = self.functions.get(func_name)
        found = []
        if info is not None:
            for stmt in _own_statements(info.node.body):
                found.extend(self._scan_statement(stmt, info, func_name))
        self._mutations[func_name] = found
        return found

    def _classify(self, root, info):
        """Resolve *root* against the scope stack; ``None`` if local."""
        if root is None or root in info.locals:
            return None
        if root in info.nonlocals or root in info.enclosing:
            return "closure"
        if root in self.module_classes:
            return "class-attr"
        if root in info.globals or root in self.module_names:
            return "global"
        return None  # builtin or unresolved import-time name

    def _scan_statement(self, stmt, info, func_name):
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Store
                ):
                    if node.id in info.globals:
                        yield Mutation(
                            "global", node.id, stmt.lineno, func_name
                        )
                    elif node.id in info.nonlocals:
                        yield Mutation(
                            "closure", node.id, stmt.lineno, func_name
                        )
                elif isinstance(node, (ast.Attribute, ast.Subscript)) \
                        and isinstance(node.ctx, ast.Store):
                    kind = self._classify(_attribute_root(node), info)
                    if kind is not None:
                        yield Mutation(
                            kind, _attribute_root(node), stmt.lineno,
                            func_name,
                        )
        # In-place mutator calls: SHARED.append(...), CACHE.update(...)
        # Only the statement's own expressions are scanned — nested
        # statements are visited on their own by _own_statements.
        for expr in own_expressions(stmt):
            for node in ast.walk(expr):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in MUTATOR_METHODS:
                    continue
                root = _attribute_root(func.value)
                kind = self._classify(root, info)
                if kind is not None:
                    yield Mutation(kind, root, node.lineno, func_name)

    def external_mutations(self, func_name):
        """All external stores reachable from *func_name*.

        Returns ``[(mutation, chain)]`` where *chain* is the call path
        from *func_name* to the function performing the store (a
        single-element chain means the store is direct).
        """
        results = []
        parents = {func_name: None}
        for name in self.transitive_closure(func_name):
            for callee in self.calls(name):
                parents.setdefault(callee, name)
            for mutation in self.direct_mutations(name):
                chain = []
                cursor = name
                while cursor is not None:
                    chain.append(cursor)
                    cursor = parents.get(cursor)
                results.append((mutation, list(reversed(chain))))
        return results
