"""Worklist dataflow solving over :class:`~repro.lint.flow.cfg.CFG`.

Two classic forward analyses, both instances of one fixpoint engine:

* **Reaching definitions** (:func:`reaching_definitions`) — for every
  node, which ``(name, line)`` definitions may reach it.
* **Taint** (:class:`TaintAnalysis`) — a small powerset lattice: each
  variable maps to the set of *taint labels* (e.g. ``"wall-clock"``)
  its value may carry.  Labels enter at *source* calls (classified by
  a caller-supplied function), flow through assignments, arithmetic,
  f-strings, tuple unpacking, loop targets and local helper calls
  (via :class:`~repro.lint.flow.summaries.ModuleSummaries`), and are
  read off at any program point by the passes.

The lattice in both cases is a map ``name -> frozenset`` ordered by
pointwise ``⊆`` with pointwise union as join; the transfer functions
are monotone and the label sets finite, so the worklist iteration
terminates at the least fixpoint.

States are plain dicts (name to frozenset); a missing key means
bottom (empty set).  Transfer functions only ever *evaluate the
expressions a statement itself executes* — an ``if`` node reads its
test, not its body, because the body statements are separate CFG
nodes.
"""

import ast
import collections

from repro.lint.astutil import call_name

_EMPTY = frozenset()


# ----------------------------------------------------------------------
# The statements' own expressions and bindings
# ----------------------------------------------------------------------

def own_expressions(stmt):
    """The expressions *stmt* itself evaluates (not nested statements).

    For compound statements this is the header expression only: the
    ``if``/``while`` test, the ``for`` iterable, the ``with`` context
    expressions.  For simple statements it is the whole statement's
    expression payload.
    """
    if stmt is None:
        return []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Assign):
        return [stmt.value]
    if isinstance(stmt, ast.AugAssign):
        return [stmt.value]
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Expr):
        return [stmt.value]
    if isinstance(stmt, ast.Raise):
        return [e for e in (stmt.exc, stmt.cause) if e is not None]
    if isinstance(stmt, ast.Assert):
        return [e for e in (stmt.test, stmt.msg) if e is not None]
    if isinstance(stmt, ast.Delete):
        return list(stmt.targets)
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        # Decorators and default values evaluate at definition time.
        defaults = list(stmt.args.defaults)
        defaults += [d for d in stmt.args.kw_defaults if d is not None]
        return list(stmt.decorator_list) + defaults
    if isinstance(stmt, ast.ClassDef):
        return list(stmt.decorator_list) + list(stmt.bases)
    if isinstance(stmt, ast.Try):
        return []
    return []


def target_names(target):
    """All plain names bound by an assignment target (tuples unpacked)."""
    names = []
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.append(node.id)
    return names


def bindings(stmt):
    """``(names, value_expr, augmented)`` bindings *stmt* performs.

    *value_expr* is the expression whose value flows into *names*
    (``None`` when nothing meaningful flows, e.g. an ``except ... as
    e`` binding); *augmented* marks ``x += ...``-style updates that
    merge with the old value instead of replacing it.
    """
    out = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            out.append((target_names(target), stmt.value, False))
    elif isinstance(stmt, ast.AugAssign):
        out.append((target_names(stmt.target), stmt.value, True))
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            out.append((target_names(stmt.target), stmt.value, False))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        out.append((target_names(stmt.target), stmt.iter, False))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                out.append((
                    target_names(item.optional_vars),
                    item.context_expr,
                    False,
                ))
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            out.append(([stmt.name], None, False))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        out.append(([stmt.name], None, False))
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            name = alias.asname or alias.name.split(".")[0]
            out.append(([name], None, False))
    # Walrus bindings inside the statement's own expressions.
    for expr in own_expressions(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.NamedExpr):
                out.append((target_names(node.target), node.value, False))
    return out


# ----------------------------------------------------------------------
# The fixpoint engine
# ----------------------------------------------------------------------

def join(states):
    """Pointwise union of variable-to-frozenset states."""
    merged = {}
    for state in states:
        for name, values in state.items():
            if name in merged:
                merged[name] = merged[name] | values
            else:
                merged[name] = values
    return merged


def solve_forward(cfg, transfer, entry_state=None):
    """Iterate *transfer* to the least fixpoint; returns in-states.

    *transfer(node_index, in_state) -> out_state* must be monotone.
    The returned list maps each node index to the joined state holding
    *on entry* to that node.
    """
    num = len(cfg.nodes)
    in_states = [{} for _ in range(num)]
    out_states = [{} for _ in range(num)]
    in_states[cfg.entry] = dict(entry_state or {})
    out_states[cfg.entry] = dict(entry_state or {})
    worklist = collections.deque(range(num))
    queued = [True] * num
    while worklist:
        node = worklist.popleft()
        queued[node] = False
        if node != cfg.entry:
            in_states[node] = join(
                out_states[pred] for pred in cfg.pred[node]
            )
        out = transfer(node, in_states[node])
        if out != out_states[node]:
            out_states[node] = out
            for succ in cfg.succ[node]:
                if not queued[succ]:
                    queued[succ] = True
                    worklist.append(succ)
    return in_states


# ----------------------------------------------------------------------
# Reaching definitions
# ----------------------------------------------------------------------

def reaching_definitions(cfg):
    """Reaching definitions: per node, ``{name: frozenset(def lines)}``.

    A definition is any binding (assignment, loop target, ``with ...
    as``, import, ``def``) recorded at the line of its statement;
    ordinary bindings kill prior definitions of the same name,
    augmented assignments accumulate.
    """
    def transfer(node, state):
        stmt = cfg.nodes[node]
        if stmt is None:
            return dict(state)
        bound = bindings(stmt)
        if not bound:
            return dict(state)
        out = dict(state)
        for names, _value, augmented in bound:
            for name in names:
                definition = frozenset({stmt.lineno})
                if augmented:
                    out[name] = out.get(name, _EMPTY) | definition
                else:
                    out[name] = definition
        return out

    return solve_forward(cfg, transfer)


# ----------------------------------------------------------------------
# Taint
# ----------------------------------------------------------------------

class TaintAnalysis:
    """Propagate taint labels through one CFG.

    Parameters
    ----------
    sources:
        ``callable(dotted_name) -> iterable of labels`` classifying a
        callee as a taint source (e.g. ``time.time`` ->
        ``{"wall-clock"}``).  Called for every ``Call`` seen.
    summaries:
        Optional :class:`~repro.lint.flow.summaries.ModuleSummaries`;
        calls to module-local helpers inherit the helper's
        return-taint summary, so taint crosses helper-function
        boundaries.
    """

    def __init__(self, sources, summaries=None):
        self.sources = sources
        self.summaries = summaries

    def taint_of(self, expr, state):
        """The taint label set of *expr* under variable *state*.

        Conservative: the union over every name read and every call
        made anywhere in the expression — a value derived from a
        tainted input (arithmetic, formatting, indexing, a helper
        call) is itself tainted.
        """
        labels = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                labels |= state.get(node.id, _EMPTY)
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name is None:
                    continue
                labels.update(self.sources(name))
                if self.summaries is not None:
                    labels |= self.summaries.returns_taint(name, self)
        return frozenset(labels)

    def transfer(self, cfg):
        """The transfer function for *cfg*, for :func:`solve_forward`."""
        def run(node, state):
            stmt = cfg.nodes[node]
            if stmt is None:
                return dict(state)
            bound = bindings(stmt)
            if not bound:
                return dict(state)
            out = dict(state)
            for names, value, augmented in bound:
                taint = (
                    self.taint_of(value, state)
                    if value is not None else _EMPTY
                )
                for name in names:
                    if augmented:
                        out[name] = out.get(name, _EMPTY) | taint
                    else:
                        out[name] = taint
            return out

        return run

    def solve(self, cfg, entry_state=None):
        """In-state taint environments for every node of *cfg*."""
        return solve_forward(cfg, self.transfer(cfg), entry_state)
