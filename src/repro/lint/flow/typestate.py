"""Typestate analysis: protocol automata over CFG paths.

A *typestate* protocol says a resource's legal operations depend on
the state prior operations left it in: a shared-memory handle may be
attached while published but not after unpublish; a journal handle
must see ``write -> flush -> fsync`` before it closes.  This module
runs a worklist solve with a states-of-an-automaton lattice: each
tracked variable maps to the *set* of protocol states it may be in at
a program point (the powerset join makes merges at CFG confluences
conservative), and a :class:`TypestateSpec` supplies the automaton.
The solver is edge-aware where it matters: an exceptional edge leaving
an acquiring statement carries the *pre-acquisition* state, because a
``publish_plan`` call that raised never bound its handle.

A spec contributes:

* :meth:`~TypestateSpec.acquisitions` — statements that bind a fresh
  tracked resource to a plain name (``h = publish_plan(p)``,
  ``with open(p, "a") as h:``);
* :meth:`~TypestateSpec.events` — operations a statement performs on
  named resources (``h.flush()``, ``unpublish_plan(h)``);
* :meth:`~TypestateSpec.transition` — the automaton:
  ``(state, op) -> new state``, or ``None`` for an illegal operation
  (reported at the operating statement);
* :attr:`~TypestateSpec.final_states` — states a resource may hold
  when the scope exits; anything else still live at ``exit`` is a
  leak, reported at the acquisition with a witness path.

Escape hatches keep the analysis honest rather than noisy: a tracked
name that is returned, yielded, re-bound, aliased, stored into a
container/attribute, passed to a call the spec does not recognise, or
called through an unrecognised method moves to the :data:`ESCAPED`
state and is never reported — ownership demonstrably left the scope,
which is exactly the ``handles[key] = publish_plan(...)``-then-
``finally`` pattern of the real sweep code.  Pure attribute *reads*
(``handle.kind``, ``attached.plan``) do not escape: they cannot
transfer ownership or change protocol state, and exempting them keeps
assertions and layout lookups from blinding the analysis.
Specs may resolve module-local helpers interprocedurally (via
:class:`~repro.lint.flow.summaries.ModuleSummaries` in
:meth:`~TypestateSpec.prepare`) so a wrapper that transitively
releases a resource counts as the release itself, not an escape.

Exception edges are part of the path set by default
(:attr:`~TypestateSpec.include_exceptional`); a spec whose protocol
treats in-flight exceptions as the crash model (journal writes) sets
it ``False`` and is solved over :meth:`CFG.without_exceptional`.
"""

import ast

from repro.lint.flow.cfg import build_cfg, iter_scopes
from repro.lint.flow.dataflow import bindings, own_expressions

#: Absorbing state for resources whose ownership left the scope.
ESCAPED = "<escaped>"

_EMPTY = frozenset()


def _ownership_mentions(expr):
    """Names used in ways that may transfer ownership or mutate state.

    A bare ``h`` (returned, passed as an argument, aliased, subscripted)
    and a method call ``h.anything(...)`` both count; a pure attribute
    read ``h.attr`` does not — it cannot move the resource through the
    protocol, so tracking survives assertions like ``h.kind == "shm"``.
    """
    mentions = set()

    def visit(node, call_func=False):
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name):
                if call_func:
                    mentions.add(node.value.id)
                return
            visit(node.value, False)
            return
        if isinstance(node, ast.Call):
            visit(node.func, True)
            for arg in node.args:
                visit(arg, False)
            for keyword in node.keywords:
                visit(keyword.value, False)
            return
        if isinstance(node, ast.Name):
            mentions.add(node.id)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, False)

    visit(expr)
    return mentions


class Event:
    """One protocol operation a statement performs on a tracked name."""

    __slots__ = ("var", "op", "lineno")

    def __init__(self, var, op, lineno):
        self.var = var
        self.op = op
        self.lineno = lineno


class TypestateSpec:
    """One protocol automaton; subclass per pass."""

    #: Protocol name used in messages.
    name = "resource"
    #: States legal at scope exit (beside :data:`ESCAPED`).
    final_states = frozenset()
    #: Ops that release the resource — witness paths avoid them.
    release_ops = frozenset()
    #: Whether exception edges participate in the path set.
    include_exceptional = True

    def prepare(self, tree):
        """Per-module setup (e.g. build :class:`ModuleSummaries`)."""

    def acquisitions(self, stmt):
        """``[(var, initial_state)]`` resources *stmt* binds."""
        return ()

    def events(self, stmt):
        """:class:`Event` operations *stmt* performs."""
        return ()

    def transition(self, state, op):
        """New state, or ``None`` when *op* is illegal in *state*."""
        raise NotImplementedError

    def violation_message(self, var, state, op):
        """Message for an illegal *op* on *var* in *state*."""
        return (
            f"{self.name} {var!r} does not allow {op} in state {state}"
        )

    def leak_message(self, var, state, path):
        """Message for *var* still live (in *state*) at scope exit."""
        return (
            f"{self.name} {var!r} may reach the scope exit in state"
            f" {state} (via {path})"
        )


class _Scope:
    """Precomputed per-statement facts for one CFG."""

    def __init__(self, cfg, spec):
        self.cfg = cfg
        self.spec = spec
        self.acquired = {}   # node -> [(var, state)]
        self.events = {}     # node -> [Event]
        self.mentions = {}   # node -> names the stmt's expressions read
        self.bound = {}      # node -> names the stmt re-binds
        for node in cfg.statement_nodes():
            stmt = cfg.nodes[node]
            acquired = list(spec.acquisitions(stmt))
            events = list(spec.events(stmt))
            self.acquired[node] = acquired
            self.events[node] = events
            covered = {event.var for event in events}
            covered |= {var for var, _state in acquired}
            mentions = set()
            for expr in own_expressions(stmt):
                mentions |= _ownership_mentions(expr)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                # Nested scopes are opaque single nodes here: anything
                # they close over escapes this scope's tracking.
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Name):
                        mentions.add(sub.id)
            self.mentions[node] = mentions - covered
            bound = set()
            for names, _value, _aug in bindings(stmt):
                bound.update(names)
            self.bound[node] = bound - {var for var, _s in acquired}

    def transfer(self, node, state, acquisitions=True):
        out = dict(state)
        stmt = self.cfg.nodes[node]
        if stmt is None:
            return out
        # 1. protocol events move states (illegal ops keep the state:
        #    the violation is reported once, at the statement, during
        #    the reporting walk — an absorbing error state would hide
        #    later, distinct violations on the same path).
        for event in self.events[node]:
            states = out.get(event.var)
            if states is None:
                continue
            moved = set()
            for current in states:
                if current == ESCAPED:
                    moved.add(ESCAPED)
                    continue
                target = self.spec.transition(current, event.op)
                moved.add(current if target is None else target)
            out[event.var] = frozenset(moved)
        # 2. unrecognised uses and re-bindings escape.
        for var in self.mentions[node]:
            if var in out:
                out[var] = frozenset({ESCAPED})
        for var in self.bound[node]:
            if var in out:
                out[var] = frozenset({ESCAPED})
        # 3. acquisitions (re)start tracking.
        if acquisitions:
            for var, initial in self.acquired[node]:
                out[var] = frozenset({initial})
        return out


def _merge_into(target, delta):
    """Join *delta* into per-variable state map *target*; True if grew."""
    changed = False
    for var, states in delta.items():
        merged = target.get(var, _EMPTY) | states
        if merged != target.get(var, _EMPTY):
            target[var] = merged
            changed = True
    return changed


def _solve(view, scope):
    """Edge-aware worklist solve of *scope* over *view*.

    Unlike the generic :func:`~repro.lint.flow.dataflow.solve_forward`,
    *interrupted* out-edges — the implicit statement-to-handler edges,
    where the statement may have raised part-way through — propagate
    the statement's post-state **without its acquisitions**: when ``h =
    publish_plan(p)`` itself raises, nothing was ever bound to ``h``,
    so the handler path must not be asked to release it.  Protocol
    *events* are kept even on interrupted edges — a release call is
    assumed atomic (it released or it raised before doing anything
    observable); modelling "``close()`` raised halfway" would flag
    every ``finally``-block release nested inside another handler
    region, which is noise, not signal.  Other exceptional edges — a
    ``finally`` frontier's continuation, an explicit ``raise``'s jump —
    leave statements that ran to completion, so they carry the
    ordinary post-state: the release inside a ``finally`` *did* happen
    even when an exception is propagating past it.
    """
    in_states = [dict() for _ in view.nodes]
    visited = set()
    worklist = [view.entry]
    while worklist:
        node = worklist.pop()
        visited.add(node)
        state = in_states[node]
        out_normal = scope.transfer(node, state)
        out_interrupted = None
        for succ in view.succ[node]:
            if (node, succ) in view.interrupted:
                if out_interrupted is None:
                    out_interrupted = scope.transfer(
                        node, state, acquisitions=False
                    )
                delta = out_interrupted
            else:
                delta = out_normal
            if _merge_into(in_states[succ], delta) or succ not in visited:
                worklist.append(succ)
    return in_states


def check_scope(cfg, spec):
    """Yield ``(lineno, message)`` protocol findings for one scope."""
    scope = _Scope(cfg, spec)
    if not any(scope.acquired.values()):
        return
    view = cfg if spec.include_exceptional else cfg.without_exceptional()
    in_states = _solve(view, scope)

    # Illegal operations, at their statement.
    for node in cfg.statement_nodes():
        for event in scope.events[node]:
            states = in_states[node].get(event.var, _EMPTY)
            for current in sorted(states - {ESCAPED}):
                if spec.transition(current, event.op) is None:
                    yield event.lineno, spec.violation_message(
                        event.var, current, event.op
                    )

    # Leaks: non-final states reaching the scope exit.
    allowed = spec.final_states | {ESCAPED}
    exit_state = in_states[view.exit]
    reported = set()
    for node in cfg.statement_nodes():
        for var, _initial in scope.acquired[node]:
            if var in reported:
                continue
            leaked = sorted(exit_state.get(var, _EMPTY) - allowed)
            if not leaked:
                continue
            reported.add(var)
            path = _witness_path(view, scope, node, var)
            yield cfg.nodes[node].lineno, spec.leak_message(
                var, leaked[0], path
            )


def _witness_path(view, scope, start, var):
    """A shortest release-free path from the acquisition to ``exit``.

    Names the leaking CFG path in the finding: the line numbers control
    flows through without ever releasing (or escaping) *var*.
    """
    blocked = set()
    for node in view.statement_nodes():
        if var in scope.mentions[node] or var in scope.bound[node]:
            blocked.add(node)
        for event in scope.events[node]:
            if event.var == var and event.op in scope.spec.release_ops:
                blocked.add(node)
    parents = {start: None}
    queue = [start]
    while queue:
        node = queue.pop(0)
        if node == view.exit:
            break
        for succ in view.succ[node]:
            if succ not in parents and succ not in blocked:
                parents[succ] = node
                queue.append(succ)
    if view.exit not in parents:
        return "an unreleased path"
    chain = []
    cursor = parents[view.exit]
    while cursor is not None and cursor != start:
        stmt = view.nodes[cursor]
        if stmt is not None:
            chain.append(stmt.lineno)
        cursor = parents[cursor]
    chain.reverse()
    if not chain:
        return "the straight-line path to the scope exit"
    if len(chain) > 6:
        chain = chain[:3] + ["..."] + chain[-2:]
    steps = " -> ".join(str(line) for line in chain)
    return f"lines {steps} -> exit"


def check_module_scopes(tree, spec):
    """Run *spec* over every scope of a module; yields findings."""
    spec.prepare(tree)
    for scope_name, scope in iter_scopes(tree):
        cfg = build_cfg(scope, name=scope_name)
        yield from check_scope(cfg, spec)
