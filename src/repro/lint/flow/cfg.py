"""Intraprocedural control-flow graphs over the Python AST.

:func:`build_cfg` turns one scope — a function body or a module's
top-level statements — into a statement-level :class:`CFG`: one node
per statement (plus synthetic ``entry``/``exit`` nodes) and a directed
edge for every way control can move between them.  The construction
covers the control constructs the dataflow passes need to reason
about:

* ``if``/``elif``/``else`` chains (the header node branches to each
  arm and, absent an ``else``, falls through);
* ``while`` and ``for`` loops including their ``else`` clauses —
  ``break`` jumps past the ``else``, a constant-true ``while`` test
  has no fall-out edge, so code after ``while True:`` without a
  ``break`` is correctly unreachable;
* ``try``/``except``/``else``/``finally``: every statement inside a
  ``try`` body gets an *exception edge* to each handler (and to the
  ``finally`` block, covering exceptions no handler matches), handler
  bodies route their own exceptions onward, and ``return``/``break``/
  ``continue`` inside a ``try`` with a ``finally`` are routed through
  the ``finally`` block first;
* ``with`` blocks, including context managers known to swallow
  exceptions (``contextlib.suppress``), whose body statements get an
  edge directly to whatever follows the block;
* early ``return``/``raise`` (no fall-through; ``raise`` targets the
  innermost handler region or ``exit``), ``assert`` (falls through,
  with an exception edge when inside a handler region);
* comprehensions and generator expressions — evaluated atomically as
  part of their enclosing statement's node, never split.

The graph is deliberately *conflated* in one place: a ``finally``
block appears once, shared by the normal path, the exceptional path
and any ``return``/``break`` routed through it.  That keeps the graph
linear in the source size; the analyses built on top (reachability,
reaching definitions, taint, resource paths) are all conservative
over-approximations, for which extra path sharing only ever adds
behaviours, never hides one.
"""

import ast

from repro.lint.astutil import call_name

#: Context-manager callees that swallow exceptions raised in their body.
#: ``pytest.raises``/``warns`` swallow the exception they assert on —
#: control resumes after the block, which is the whole point of them.
_SWALLOWING_CMS = frozenset({
    "contextlib.suppress", "suppress",
    "pytest.raises", "raises",
    "pytest.warns", "warns",
})

#: Statement kinds rendered with a nicer label than the AST class name.
_KIND_NAMES = {
    "asyncfunctiondef": "functiondef",
    "asyncfor": "for",
    "asyncwith": "with",
    "trystar": "try",
}


class CFG:
    """A control-flow graph for one function or module scope.

    Nodes are integers.  ``nodes[i]`` is the AST statement the node
    wraps (``None`` for ``entry``/``exit``), ``kinds[i]`` a short
    lower-case label (``"assign"``, ``"if"``, ``"except"``, ...),
    ``succ[i]``/``pred[i]`` the adjacency sets.  ``blocks`` records
    every statement list that was visited as ``(parent_node, [top
    node of each statement])`` — the unreachable-code pass uses it to
    report only the head of each dead region.
    """

    def __init__(self, name):
        self.name = name
        self.nodes = []
        self.kinds = []
        self.succ = []
        self.pred = []
        self.blocks = []
        self.exceptional = set()
        self.interrupted = set()
        self.entry = self.add_node("entry", None)
        self.exit = self.add_node("exit", None)

    def add_node(self, kind, stmt):
        """Append a node; returns its index."""
        self.nodes.append(stmt)
        self.kinds.append(kind)
        self.succ.append(set())
        self.pred.append(set())
        return len(self.nodes) - 1

    def add_edge(self, src, dst, exceptional=False):
        """Add a directed edge from node *src* to node *dst*.

        *exceptional* marks edges control only takes while an exception
        (or a ``return`` routed through a shared ``finally``) is
        propagating: the implicit statement-to-handler edges, an
        explicit ``raise``'s jump, and a ``finally`` frontier's
        continuation out of its region.  When the same (src, dst) pair
        is also reachable normally, normal wins — analyses that filter
        on :attr:`exceptional` must only ever lose crash paths, never a
        straight-line one.

        :attr:`interrupted` refines the exceptional set: it holds only
        the implicit statement-to-handler edges, where the source
        statement may have raised *part-way through* (so its effects
        may not have happened).  A ``finally`` frontier's continuation
        and an explicit ``raise``'s jump are exceptional but **not**
        interrupted — their source statements ran to completion before
        control moved.
        """
        if exceptional:
            if dst not in self.succ[src]:
                self.exceptional.add((src, dst))
        else:
            self.exceptional.discard((src, dst))
            self.interrupted.discard((src, dst))
        self.succ[src].add(dst)
        self.pred[dst].add(src)

    def label(self, index):
        """Human-readable node label: ``kind:lineno`` (or bare kind)."""
        stmt = self.nodes[index]
        if stmt is None:
            return self.kinds[index]
        return f"{self.kinds[index]}:{stmt.lineno}"

    def edges(self):
        """Sorted ``(src_label, dst_label)`` pairs — golden-test food."""
        pairs = []
        for src, targets in enumerate(self.succ):
            for dst in targets:
                pairs.append((self.label(src), self.label(dst)))
        return sorted(pairs)

    def reachable(self):
        """The set of node indices reachable from ``entry``."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for nxt in self.succ[stack.pop()]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def statement_nodes(self):
        """Indices of real statement nodes (skips entry/exit)."""
        return [i for i, stmt in enumerate(self.nodes) if stmt is not None]

    def without_exceptional(self):
        """A view of this graph restricted to normal-path edges.

        Duck-types everything :func:`~repro.lint.flow.dataflow.
        solve_forward` and the path walkers read (``nodes``, ``kinds``,
        ``entry``/``exit``, ``succ``/``pred``, ``label``,
        ``statement_nodes``); only the exceptional edges are gone.
        Analyses whose protocol treats an in-flight exception as the
        crash model — e.g. a journal write torn by a fault — solve over
        this view; analyses that must hold on crash paths too (shm
        lifetime) solve over the full graph.
        """
        return _NormalView(self)


class _NormalView:
    """A :class:`CFG` with its exceptional edges filtered out."""

    def __init__(self, cfg):
        self.name = cfg.name
        self.nodes = cfg.nodes
        self.kinds = cfg.kinds
        self.blocks = cfg.blocks
        self.entry = cfg.entry
        self.exit = cfg.exit
        self.exceptional = set()
        self.interrupted = set()
        self.succ = [
            {dst for dst in targets if (src, dst) not in cfg.exceptional}
            for src, targets in enumerate(cfg.succ)
        ]
        self.pred = [set() for _ in cfg.nodes]
        for src, targets in enumerate(self.succ):
            for dst in targets:
                self.pred[dst].add(src)

    label = CFG.label
    reachable = CFG.reachable
    statement_nodes = CFG.statement_nodes


class _Loop:
    """Book-keeping for one enclosing loop during construction."""

    __slots__ = ("head", "breaks", "finally_depth")

    def __init__(self, head, finally_depth):
        self.head = head
        self.breaks = set()
        self.finally_depth = finally_depth


class _Region:
    """An exception-handling region: where raises inside it land.

    ``targets`` holds handler / ``finally`` entry nodes; a *swallow*
    region (``with contextlib.suppress(...)``) instead collects the
    raising nodes so they can be wired to whatever follows the block.
    """

    __slots__ = ("targets", "swallow")

    def __init__(self, targets=(), swallow=None):
        self.targets = list(targets)
        self.swallow = swallow


class _Finally:
    """One active ``finally`` block: its entry node and exit frontier."""

    __slots__ = ("entry", "frontier")

    def __init__(self, entry, frontier):
        self.entry = entry
        self.frontier = frontier


def _is_constant_true(test):
    return isinstance(test, ast.Constant) and bool(test.value)


def _swallows_exceptions(with_stmt):
    for item in with_stmt.items:
        name = call_name(item.context_expr)
        if name in _SWALLOWING_CMS:
            return True
    return False


class _Builder:
    def __init__(self, cfg):
        self.cfg = cfg
        self.loops = []
        self.regions = []
        self.finallies = []

    # -- plumbing ------------------------------------------------------

    def connect(self, preds, node, exceptional=False):
        for pred in preds:
            self.cfg.add_edge(pred, node, exceptional=exceptional)

    def stmt_node(self, stmt, kind=None, can_raise=True):
        """Create a node for *stmt*, wiring its implicit exception edge.

        *can_raise* is ``False`` for header nodes that execute nothing
        themselves (a bare ``try:``) — they get no implicit edge, so
        state reaching the handler always came from a statement that
        could actually have raised.
        """
        if kind is None:
            kind = type(stmt).__name__.lower()
            kind = _KIND_NAMES.get(kind, kind)
        index = self.cfg.add_node(kind, stmt)
        if can_raise and self.regions:
            region = self.regions[-1]
            if region.swallow is not None:
                region.swallow.add(index)
            else:
                for target in region.targets:
                    self.cfg.add_edge(index, target, exceptional=True)
                    self.cfg.interrupted.add((index, target))
        return index

    # -- statement lists -----------------------------------------------

    def visit_block(self, stmts, preds, parent):
        """Visit a statement list; returns the fall-through frontier."""
        tops = []
        self.cfg.blocks.append((parent, tops))
        frontier = set(preds)
        for stmt in stmts:
            top, frontier = self.visit_stmt(stmt, frontier)
            tops.append(top)
        return frontier

    def visit_stmt(self, stmt, preds):
        if isinstance(stmt, ast.If):
            return self.visit_if(stmt, preds)
        if isinstance(stmt, ast.While):
            return self.visit_while(stmt, preds)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self.visit_for(stmt, preds)
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            return self.visit_try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.visit_with(stmt, preds)
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            return self.visit_match(stmt, preds)
        if isinstance(stmt, ast.Return):
            return self.visit_return(stmt, preds)
        if isinstance(stmt, ast.Raise):
            return self.visit_raise(stmt, preds)
        if isinstance(stmt, ast.Break):
            return self.visit_break(stmt, preds)
        if isinstance(stmt, ast.Continue):
            return self.visit_continue(stmt, preds)
        # Simple statements — including function/class definitions,
        # whose bodies are separate scopes with their own CFGs.
        node = self.stmt_node(stmt)
        self.connect(preds, node)
        return node, {node}

    # -- branching -----------------------------------------------------

    def visit_if(self, stmt, preds):
        node = self.stmt_node(stmt)
        self.connect(preds, node)
        then_frontier = self.visit_block(stmt.body, {node}, node)
        if stmt.orelse:
            else_frontier = self.visit_block(stmt.orelse, {node}, node)
        else:
            else_frontier = {node}
        return node, then_frontier | else_frontier

    def visit_match(self, stmt, preds):  # pragma: no cover (py3.10+)
        node = self.stmt_node(stmt, "match")
        self.connect(preds, node)
        frontier = {node}
        for case in stmt.cases:
            frontier |= self.visit_block(case.body, {node}, node)
        return node, frontier

    # -- loops ---------------------------------------------------------

    def visit_while(self, stmt, preds):
        head = self.stmt_node(stmt)
        self.connect(preds, head)
        loop = _Loop(head, len(self.finallies))
        self.loops.append(loop)
        body_frontier = self.visit_block(stmt.body, {head}, head)
        self.connect(body_frontier, head)
        self.loops.pop()
        # The test-is-false exit; a constant-true test never falls out.
        exits = set() if _is_constant_true(stmt.test) else {head}
        if stmt.orelse:
            # The else clause runs when the loop condition fails —
            # break jumps past it, straight to the loop frontier.
            exits = self.visit_block(stmt.orelse, exits, head)
        return head, exits | loop.breaks

    def visit_for(self, stmt, preds):
        head = self.stmt_node(stmt)
        self.connect(preds, head)
        loop = _Loop(head, len(self.finallies))
        self.loops.append(loop)
        body_frontier = self.visit_block(stmt.body, {head}, head)
        self.connect(body_frontier, head)
        self.loops.pop()
        exits = {head}
        if stmt.orelse:
            exits = self.visit_block(stmt.orelse, exits, head)
        return head, exits | loop.breaks

    def visit_break(self, stmt, preds):
        node = self.stmt_node(stmt)
        self.connect(preds, node)
        if self.loops:
            loop = self.loops[-1]
            if len(self.finallies) > loop.finally_depth:
                # break inside try/finally runs the finally first; the
                # outermost in-loop finally then reaches the loop exit.
                self.cfg.add_edge(node, self.finallies[-1].entry)
                loop.breaks |= self.finallies[loop.finally_depth].frontier
            else:
                loop.breaks.add(node)
        return node, set()

    def visit_continue(self, stmt, preds):
        node = self.stmt_node(stmt)
        self.connect(preds, node)
        if self.loops:
            loop = self.loops[-1]
            if len(self.finallies) > loop.finally_depth:
                self.cfg.add_edge(node, self.finallies[-1].entry)
                self.connect(
                    self.finallies[loop.finally_depth].frontier, loop.head
                )
            else:
                self.cfg.add_edge(node, loop.head)
        return node, set()

    # -- scope exits ---------------------------------------------------

    def visit_return(self, stmt, preds):
        node = self.stmt_node(stmt)
        self.connect(preds, node)
        if self.finallies:
            self.cfg.add_edge(node, self.finallies[-1].entry)
        else:
            self.cfg.add_edge(node, self.cfg.exit)
        return node, set()

    def visit_raise(self, stmt, preds):
        node = self.stmt_node(stmt)
        self.connect(preds, node)
        if not self.regions:
            # stmt_node wires region targets; outside any region the
            # exception propagates out of the scope.
            self.cfg.add_edge(node, self.cfg.exit, exceptional=True)
        return node, set()

    # -- exception handling --------------------------------------------

    def visit_try(self, stmt, preds):
        node = self.stmt_node(stmt, "try", can_raise=False)
        self.connect(preds, node)

        fin = None
        if stmt.finalbody:
            # Visit the finally body first (with the *outer* region
            # context — its own exceptions propagate outward) so its
            # entry node exists before body raises need to target it.
            fin_entry = len(self.cfg.nodes)
            fin_frontier = self.visit_block(stmt.finalbody, set(), node)
            fin = _Finally(fin_entry, fin_frontier)

        handler_nodes = [
            self.cfg.add_node("except", handler)
            for handler in stmt.handlers
        ]

        body_targets = list(handler_nodes)
        if fin is not None:
            # Exceptions no handler matches still run the finally.
            body_targets.append(fin.entry)
        if fin is not None:
            self.finallies.append(fin)
        if body_targets:
            self.regions.append(_Region(body_targets))
            body_frontier = self.visit_block(stmt.body, {node}, node)
            self.regions.pop()
        else:
            body_frontier = self.visit_block(stmt.body, {node}, node)
        if stmt.orelse:
            body_frontier = self.visit_block(
                stmt.orelse, body_frontier, node
            )

        handler_frontier = set()
        for handler, handler_node in zip(stmt.handlers, handler_nodes):
            if fin is not None:
                self.regions.append(_Region([fin.entry]))
            handler_frontier |= self.visit_block(
                handler.body, {handler_node}, handler_node
            )
            if fin is not None:
                self.regions.pop()
        if fin is not None:
            self.finallies.pop()

        normal_exits = body_frontier | handler_frontier
        if fin is None:
            return node, normal_exits
        self.connect(normal_exits, fin.entry)
        # After an exceptional (or return-routed) pass through the
        # finally, control leaves the region: to the enclosing
        # handlers, and — for propagating exceptions and returns —
        # out of the scope entirely.
        for target in self.exceptional_continuations():
            self.connect(fin.frontier, target, exceptional=True)
        return node, set(fin.frontier)

    def exceptional_continuations(self):
        targets = set()
        if self.regions:
            region = self.regions[-1]
            if region.swallow is None:
                targets.update(region.targets)
        if self.finallies:
            # A propagating exception — and a return routed through
            # this finally — must run the enclosing finally before it
            # can leave the scope; it never jumps straight to exit.
            targets.add(self.finallies[-1].entry)
        else:
            targets.add(self.cfg.exit)
        return targets

    # -- with blocks ---------------------------------------------------

    def visit_with(self, stmt, preds):
        node = self.stmt_node(stmt, "with")
        self.connect(preds, node)
        if _swallows_exceptions(stmt):
            region = _Region(swallow=set())
            self.regions.append(region)
            body_frontier = self.visit_block(stmt.body, {node}, node)
            self.regions.pop()
            # Swallowed exceptions resume right after the with block.
            return node, body_frontier | region.swallow
        body_frontier = self.visit_block(stmt.body, {node}, node)
        return node, body_frontier


def iter_scopes(tree):
    """Yield ``(qualified_name, scope)`` for a module and its functions.

    The module itself comes first (as the ``Module`` node), then every
    function and method at any nesting depth, named like
    ``Class.method`` / ``outer.<locals>.inner`` for readability.
    """
    yield "<module>", tree

    def walk(body, prefix):
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = prefix + stmt.name
                yield name, stmt
                yield from walk(stmt.body, name + ".<locals>.")
            elif isinstance(stmt, ast.ClassDef):
                yield from walk(stmt.body, prefix + stmt.name + ".")
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.stmt):
                        yield from walk([child], prefix)
                    elif isinstance(child, ast.ExceptHandler):
                        yield from walk(child.body, prefix)

    yield from walk(tree.body, "")


def build_cfg(scope, name=None):
    """Build the :class:`CFG` of *scope*.

    *scope* is a ``FunctionDef`` / ``AsyncFunctionDef`` (the CFG of its
    body — nested definitions are single nodes, their bodies belong to
    their own CFGs), a ``Module``, or a plain list of statements.
    """
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        stmts = scope.body
        name = name or scope.name
    elif isinstance(scope, ast.Module):
        stmts = scope.body
        name = name or "<module>"
    else:
        stmts = list(scope)
        name = name or "<block>"
    cfg = CFG(name)
    builder = _Builder(cfg)
    frontier = builder.visit_block(stmts, {cfg.entry}, None)
    builder.connect(frontier, cfg.exit)
    return cfg
