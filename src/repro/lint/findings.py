"""Structured lint findings.

Every pass reports :class:`Finding` records rather than printing, so
the CLI can render text or JSON, tests can assert on exact findings,
and CI can archive the machine-readable form.
"""

import dataclasses
import enum


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the build; ``WARNING`` findings are
    reported but do not affect the exit code (no current pass emits
    them — the level exists so a new pass can be introduced
    observe-only before being promoted to enforcing).
    """

    ERROR = "error"
    WARNING = "warning"


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation at a specific source location.

    Ordering is (path, line, pass id) so reports read top-to-bottom
    per file regardless of which pass found what.
    """

    path: str
    line: int
    pass_id: str
    message: str
    severity: Severity = Severity.ERROR

    def format(self):
        """Render the conventional one-line ``path:line: ...`` form."""
        return (
            f"{self.path}:{self.line}: [{self.pass_id}]"
            f" {self.severity.value}: {self.message}"
        )

    def to_dict(self):
        """JSON-serialisable representation (for ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "pass": self.pass_id,
            "severity": self.severity.value,
            "message": self.message,
        }
