"""Small AST helpers shared by the lint passes."""

import ast


def dotted_name(node):
    """Return the dotted name of a ``Name``/``Attribute`` chain.

    ``np.random.default_rng`` parses as nested ``Attribute`` nodes over
    a ``Name``; this flattens it back to the source spelling.  Returns
    ``None`` for anything that is not a plain dotted chain (e.g. a
    subscript or call in the middle).
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call):
    """Dotted name of a call's callee, or ``None``."""
    if isinstance(call, ast.Call):
        return dotted_name(call.func)
    return None


def keyword_names(call):
    """Explicit keyword argument names of a call (ignores ``**kwargs``)."""
    return [kw for kw in call.keywords if kw.arg is not None]


def str_constant(node):
    """The value of a string-constant node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def open_write_mode(call):
    """The write mode string of an ``open()``-style call, or ``None``.

    Understands both the positional form (``open(path, "w")``,
    ``os.fdopen(fd, "wb")``) and an explicit ``mode=`` keyword; a mode
    counts as writing when it contains any of ``w``/``a``/``x``/``+``.
    """
    mode = None
    if len(call.args) >= 2:
        mode = str_constant(call.args[1])
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = str_constant(kw.value)
    if mode is not None and any(ch in mode for ch in "wax+"):
        return mode
    return None
