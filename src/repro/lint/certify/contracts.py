"""Declared facts the kernel certification is carried out against.

A kernel contract has four ingredients:

* **symbols** — the sizes the proof is parametric over (``n``,
  ``nconfigs``, ``rob_alloc``, ...), each with the numeric box the
  Python side guarantees;
* **buffers** — for every pointer the kernel touches: its length and
  the range of its elements, both as expressions over the symbols
  (``"n + 1"``, ``"2 * n"``, ``"NEVER"``);
* **field invariants** — per struct-scalar ``[lo, hi]`` facts.  A
  ``checked`` invariant is verified at every store and may be assumed
  at every load; a ``trusted`` one (monotone counters whose bound
  rests on a counting argument, not on any single store) is assumed
  both ways and must carry a documented reason;
* **python facts** — the literal ``PLAN_CONTRACT`` /
  ``CYCLE_PLAN_CONTRACT`` dict the runtime validators in
  :mod:`repro.core.columnar` and :mod:`repro.cyclesim.plan` enforce.
  The ``plan-contract`` pass checks those literals match the copies
  here and that the validators dominate the kernel calls, so the
  boxes and element ranges this module assumes are themselves
  machine-checked rather than trusted.

Bounds that feed the C proof are plain strings parsed by the same C
expression parser the interpreter uses; bounds inside the python-facts
dicts are ``int`` or ``[symbol, offset]`` pairs so the runtime
validators can evaluate them with ``ast.literal_eval``-compatible
syntax.
"""

import hashlib

from repro.robustness.errors import InternalError


class Buf:
    """A contracted buffer: length and element range over symbols.

    ``trusted`` content (reason required) is assumed on loads but not
    checked on stores — for monotone counter arrays whose per-element
    bound rests on an iteration count the interval domain cannot see.
    """

    __slots__ = ("length", "elem", "lo", "hi", "trusted", "reason")

    def __init__(self, length, elem, lo=None, hi=None, trusted=False,
                 reason=None):
        if trusted and not reason:
            raise InternalError("trusted buffers must document a reason")
        self.length = length
        self.elem = elem
        self.lo = lo
        self.hi = hi
        self.trusted = trusted
        self.reason = reason


class Inv:
    """A scalar field invariant.  ``trusted`` ones need a reason."""

    __slots__ = ("lo", "hi", "trusted", "reason")

    def __init__(self, lo, hi, trusted=False, reason=None):
        if trusted and not reason:
            raise InternalError("trusted invariants must document a reason")
        self.lo = lo
        self.hi = hi
        self.trusted = trusted
        self.reason = reason


class StructElem:
    """A buffer of structs (``configs`` / ``results``)."""

    __slots__ = ("length", "struct")

    def __init__(self, length, struct):
        self.length = length
        self.struct = struct


class Sym:
    """An entry parameter that *is* a symbol."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name


class KernelContract:
    """Everything the certifier assumes about one C kernel: the entry
    function, its symbol/buffer/field invariants, and where the
    matching Python contract literal and runtime validator live."""

    __slots__ = ("path", "entry", "symbols", "buffers", "fields",
                 "entry_params", "python_path", "python_name",
                 "python_facts", "driver_path", "driver_name")

    def __init__(self, path, entry, symbols, buffers, fields,
                 entry_params, python_path, python_name, python_facts,
                 driver_path, driver_name):
        self.path = path
        self.entry = entry
        self.symbols = symbols
        self.buffers = buffers          # (owner, field) -> Buf|StructElem
        self.fields = fields            # (struct, field) -> Inv
        self.entry_params = entry_params  # name -> Sym|Buf|StructElem
        self.python_path = python_path
        self.python_name = python_name
        self.python_facts = python_facts
        self.driver_path = driver_path    # module calling the kernel
        self.driver_name = driver_name    # function wrapping the call

    @property
    def validator_name(self):
        """Runtime validator the driver must call before the kernel."""
        return "validate_" + self.python_name.lower()


def _bound_text(form):
    """Python-facts bound (int or [sym, offset]) as a C expression."""
    if isinstance(form, int):
        return str(form)
    sym, offset = form
    if offset == 0:
        return sym
    return f"{sym} + {offset}" if offset > 0 else f"{sym} - {-offset}"


def facts_fingerprint(*facts):
    """Stable SHA-256 over the python-facts dicts, for the manifest."""
    digest = hashlib.sha256()
    for fact in facts:
        digest.update(repr(_canonical(fact)).encode())
    return digest.hexdigest()


def _canonical(value):
    if isinstance(value, dict):
        return tuple(sorted((k, _canonical(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    return value


def _column_bufs(owner, columns, lengths, elems):
    out = {}
    for name, (lo, hi) in columns.items():
        out[(owner, name)] = Buf(
            lengths.get(name, "n"), elems[name],
            _bound_text(lo), _bound_text(hi),
        )
    return out


# ---------------------------------------------------------------- MLPsim

#: The literal ``repro.core.columnar.PLAN_CONTRACT`` must equal this.
MLPSIM_PLAN_FACTS = {
    "n_max": 1 << 26,
    "columns": {
        "ops": [0, 8],
        "prod1": [0, ["n", 0]],
        "prod2": [0, ["n", 0]],
        "prod3": [0, ["n", 0]],
        "memdep": [0, ["n", 0]],
        "dmiss": [0, 1],
        "imiss": [0, 1],
        "mispred": [0, 1],
        "pmiss": [0, 1],
        "pfuseful": [0, 1],
        "vp_ok": [0, 1],
        "smiss": [0, 1],
        "scalar_mask": [0, 1],
    },
    "config": {
        "rob": [1, 1 << 24],
        "iw": [1, 1 << 24],
        "fetch_buffer": [0, 1 << 24],
        "serializing": [0, 1],
        "load_in_order": [0, 1],
        "load_wait_staddr": [0, 1],
        "branch_in_order": [0, 1],
        "mshr_cap": [1, 1 << 30],
        "sb_cap": [0, 1 << 30],
        "slow_bp": [0, 1],
        "slow_bp_threshold": [0, 1 << 20],
    },
}

_MLPSIM_ELEMS = {
    "ops": "int8_t", "prod1": "int32_t", "prod2": "int32_t",
    "prod3": "int32_t", "memdep": "int32_t", "dmiss": "uint8_t",
    "imiss": "uint8_t", "mispred": "uint8_t", "pmiss": "uint8_t",
    "pfuseful": "uint8_t", "vp_ok": "uint8_t", "smiss": "uint8_t",
    "scalar_mask": "uint8_t",
}

#: Epochs advance at least one instruction each (the progress rule the
#: deadlock guard enforces), so epoch <= 2n + 2 < 2^28 at n <= 2^26.
_EPOCH_REASON = ("every epoch retires or defers at least one"
                 " instruction, so epoch <= 2n + 2 < 2^28")
#: Per-epoch counters count instructions scanned in one epoch.
_PER_EPOCH = ("counts instructions scanned in one epoch, <= n + 1")
#: Whole-run counters are bounded by epochs * per-epoch work.
_RUN_TOTAL = ("bounded by epochs * per-epoch accesses <= 2^54")

_MLPSIM_FIELDS = {
    ("Trace", "n"): Inv("n", "n"),
    ("Scan", "epoch"): Inv("1", "(1 << 28)", trusted=True,
                           reason=_EPOCH_REASON),
    ("Scan", "accesses"): Inv("0", "(1 << 30)", trusted=True,
                              reason=_PER_EPOCH),
    ("Scan", "e_dmiss"): Inv("0", "(1 << 30)", trusted=True,
                             reason=_PER_EPOCH),
    ("Scan", "e_imiss"): Inv("0", "(1 << 30)", trusted=True,
                             reason=_PER_EPOCH),
    ("Scan", "e_pmiss"): Inv("0", "(1 << 30)", trusted=True,
                             reason=_PER_EPOCH),
    ("Scan", "e_smiss"): Inv("0", "(1 << 30)", trusted=True,
                             reason=_PER_EPOCH),
    ("Scan", "inflight"): Inv("0", "(1 << 30)", trusted=True,
                              reason=_PER_EPOCH),
    ("Scan", "trigger_idx"): Inv("-1", "n - 1"),
    ("Scan", "first_miss_idx"): Inv("-1", "n - 1"),
    ("Scan", "blocked_memop"): Inv("0", "1"),
    ("Scan", "blocked_staddr"): Inv("0", "1"),
    ("Scan", "blocked_branch"): Inv("0", "1"),
    ("Scan", "progress"): Inv("0", "1"),
    ("Scan", "ev_count"): Inv("0", "(1 << 30)", trusted=True,
                              reason=_PER_EPOCH),
    ("Scan", "ev_first"): Inv("-1", "INH_COUNT - 1"),
    ("Scan", "ev_last"): Inv("-1", "INH_COUNT - 1"),
    ("Scan", "nd_len"): Inv(
        "0", "n", trusted=True,
        reason="each instruction index enters new_deferred at most "
               "once per epoch, so the pending count never exceeds n"),
    ("KernelResult", "epochs"): Inv("0", "(1 << 54)", trusted=True,
                                    reason=_RUN_TOTAL),
    ("KernelResult", "accesses"): Inv("0", "(1 << 54)", trusted=True,
                                      reason=_RUN_TOTAL),
    ("KernelResult", "dmiss_accesses"): Inv("0", "(1 << 54)", trusted=True,
                                            reason=_RUN_TOTAL),
    ("KernelResult", "imiss_accesses"): Inv("0", "(1 << 54)", trusted=True,
                                            reason=_RUN_TOTAL),
    ("KernelResult", "prefetch_accesses"): Inv("0", "(1 << 54)",
                                               trusted=True,
                                               reason=_RUN_TOTAL),
    ("KernelResult", "store_accesses"): Inv("0", "(1 << 54)", trusted=True,
                                            reason=_RUN_TOTAL),
    ("KernelResult", "store_epochs"): Inv("0", "(1 << 54)", trusted=True,
                                          reason=_RUN_TOTAL),
    ("KernelResult", "error_index"): Inv("-1", "n"),
}

_MLPSIM_CONFIG_FIELDS = {
    ("KernelConfig", name): Inv(
        _bound_text(lo), _bound_text(hi), trusted=True,
        reason="validated by validate_plan_contract before the call",
    )
    for name, (lo, hi) in MLPSIM_PLAN_FACTS["config"].items()
}

_MLPSIM_BUFFERS = {
    **_column_bufs("Trace", MLPSIM_PLAN_FACTS["columns"],
                   {}, _MLPSIM_ELEMS),
    ("Trace", "imiss"): Buf("n", "uint8_t", "0", "1"),
    ("Trace", "res_data"): Buf("n + 1", "int32_t", "0", "(1 << 30)"),
    ("Trace", "res_valid"): Buf("n + 1", "int32_t", "0", "(1 << 30)"),
    ("Trace", "deferred"): Buf("n + 1", "int32_t", "0", "n - 1"),
    ("Trace", "new_deferred"): Buf("n + 1", "int32_t", "0", "n - 1"),
    ("KernelResult", "inhibitors"): Buf(
        "INH_COUNT", "int64_t", "0", "(1 << 54)", trusted=True,
        reason="per-epoch counters: at most one increment per epoch"),
}

_MLPSIM_ENTRY = {
    "n": Sym("n"),
    "nconfigs": Sym("nconfigs"),
    "configs": StructElem("nconfigs", "KernelConfig"),
    "results": StructElem("nconfigs", "KernelResult"),
    **{
        name: _MLPSIM_BUFFERS[("Trace", name)]
        for name in _MLPSIM_ELEMS
    },
}

MLPSIM_CONTRACT = KernelContract(
    path="src/repro/core/_mlpsim_kernel.c",
    entry="mlpsim_batch",
    symbols={"n": (0, 1 << 26), "nconfigs": (0, 1 << 20)},
    buffers=_MLPSIM_BUFFERS,
    fields={**_MLPSIM_FIELDS, **_MLPSIM_CONFIG_FIELDS},
    entry_params=_MLPSIM_ENTRY,
    python_path="src/repro/core/columnar.py",
    python_name="PLAN_CONTRACT",
    python_facts=MLPSIM_PLAN_FACTS,
    driver_path="src/repro/core/ckernel.py",
    driver_name="run_plan",
)


# --------------------------------------------------------------- cyclesim

#: The literal ``repro.cyclesim.plan.CYCLE_PLAN_CONTRACT`` must equal
#: this.  Producer columns keep the depgraph's -1 sentinel here
#: (MLPsim's plan builder rewrites it to ``n``; cyclesim's does not).
CYCLESIM_PLAN_FACTS = {
    "n_max": 1 << 26,
    "columns": {
        "ops": [0, 8],
        "prod1": [-1, ["n", -1]],
        "prod2": [-1, ["n", -1]],
        "prod3": [-1, ["n", -1]],
        "memdep": [-1, ["n", -1]],
        "addr_line": [0, 1 << 57],
        "pc_line": [0, 1 << 57],
        "dmiss": [0, 1],
        "imiss": [0, 1],
        "mispred": [0, 1],
        "pmiss": [0, 1],
        "pfuseful": [0, 1],
    },
    "config": {
        "rob": [1, 1 << 20],
        "issue_window": [1, 1 << 20],
        "fetch_buffer": [1, 1 << 20],
        "fetch_width": [1, 1 << 16],
        "dispatch_width": [1, 1 << 16],
        "issue_width": [1, 1 << 16],
        "commit_width": [1, 1 << 16],
        "frontend_depth": [0, 1 << 16],
        "alu_latency": [0, 1 << 20],
        "branch_latency": [0, 1 << 20],
        "l1_latency": [0, 1 << 20],
        "l2_latency": [0, 1 << 20],
        "miss_penalty": [0, 1 << 20],
        "redirect_penalty": [0, 1 << 20],
        "load_in_order": [0, 1],
        "load_wait_staddr": [0, 1],
        "branch_in_order": [0, 1],
        "serializing": [0, 1],
        "perfect_l2": [0, 1],
        "event_skip": [0, 1],
    },
}

_CYCLESIM_ELEMS = {
    "ops": "int8_t", "prod1": "int32_t", "prod2": "int32_t",
    "prod3": "int32_t", "memdep": "int32_t", "addr_line": "int64_t",
    "pc_line": "int64_t", "dmiss": "uint8_t", "imiss": "uint8_t",
    "mispred": "uint8_t", "pmiss": "uint8_t", "pfuseful": "uint8_t",
}

#: Simulated time: the deadlock guard caps useful time far below
#: NEVER; completion times add one miss penalty on top.
_TIME_HI = "(1 << 53)"
#: One wheel entry per off-chip access; at most two per instruction
#: (an imiss at fetch, a dmiss/prefetch at issue), hence 2n entries.
_WHEEL_REASON = ("at most two wheel entries per instruction: one pc"
                 " line at fetch (gated by imiss_run), one data line"
                 " at issue (each instruction issues once)")
_TRK_TOTAL = ("monotone per-run totals, bounded by 2n accesses and"
              " accesses * miss_penalty time")

_CYCLESIM_FIELDS = {
    ("Ctx", "n"): Inv("n", "n"),
    ("Ctx", "ce_head"): Inv("0", "2 * n"),
    ("Ctx", "ce_tail"): Inv("0", "2 * n", trusted=True,
                            reason=_WHEEL_REASON),
    ("Ctx", "rob_alloc"): Inv("rob_alloc", "rob_alloc"),
    ("Ctx", "fq_alloc"): Inv("fq_alloc", "fq_alloc"),
    ("Ctx", "miss_penalty"): Inv("0", "(1 << 20)"),
    ("Tracker", "count"): Inv("0", "2 * n", trusted=True,
                              reason=_TRK_TOTAL),
    ("Tracker", "last_time"): Inv("0", _TIME_HI),
    ("Tracker", "nonzero"): Inv("0", "(1 << 60)", trusted=True,
                                reason=_TRK_TOTAL),
    ("Tracker", "integral"): Inv("0", "(1 << 62)", trusted=True,
                                 reason=_TRK_TOTAL),
    ("CycleResult", "cycles"): Inv("0", _TIME_HI),
    ("CycleResult", "offchip_accesses"): Inv("0", "(1 << 60)",
                                             trusted=True,
                                             reason=_TRK_TOTAL),
    ("CycleResult", "dmiss_accesses"): Inv("0", "(1 << 60)", trusted=True,
                                           reason=_TRK_TOTAL),
    ("CycleResult", "imiss_accesses"): Inv("0", "(1 << 60)", trusted=True,
                                           reason=_TRK_TOTAL),
    ("CycleResult", "prefetch_accesses"): Inv("0", "(1 << 60)",
                                              trusted=True,
                                              reason=_TRK_TOTAL),
    ("CycleResult", "nonzero_cycles"): Inv("0", "(1 << 60)"),
    ("CycleResult", "outstanding_integral"): Inv("0", "(1 << 62)"),
    ("CycleResult", "status"): Inv("0", "1"),
    ("CycleResult", "error_cycle"): Inv("0", "NEVER"),
    ("CycleResult", "error_committed"): Inv("0", "n"),
}

_CYCLESIM_CONFIG_FIELDS = {
    ("CycleConfig", name): Inv(
        _bound_text(lo), _bound_text(hi), trusted=True,
        reason="validated by validate_cycle_plan_contract before the call",
    )
    for name, (lo, hi) in CYCLESIM_PLAN_FACTS["config"].items()
}

_CYCLESIM_BUFFERS = {
    **_column_bufs("Ctx", CYCLESIM_PLAN_FACTS["columns"],
                   {}, _CYCLESIM_ELEMS),
    ("Ctx", "ready"): Buf("n", "int64_t", "0", "NEVER"),
    ("Ctx", "complete"): Buf("n", "int64_t", "0", "NEVER"),
    ("Ctx", "wake"): Buf("n", "int64_t", "-1", "NEVER"),
    ("Ctx", "imiss_run"): Buf("n", "uint8_t", "0", "1"),
    ("Ctx", "ent_done"): Buf("2 * n", "int64_t", "0", _TIME_HI),
    ("Ctx", "ent_line"): Buf("2 * n", "int64_t", "0", "(1 << 57)"),
    ("Ctx", "ent_useful"): Buf("2 * n", "uint8_t", "0", "1"),
    ("Ctx", "ent_next"): Buf("2 * n", "int32_t", "-1", "2 * n - 1"),
    ("Ctx", "hash_head"): Buf("HASH_SIZE", "int32_t", "-1", "2 * n - 1"),
    ("Ctx", "rob_buf"): Buf("rob_alloc", "int64_t", "0", "n - 1"),
    ("Ctx", "iw_buf"): Buf(
        "iw_alloc", "int64_t", "0", "n - 1", trusted=True,
        reason="slots cleared to -1 during issue are compacted out"
               " before any later scan; live entries are instruction"
               " indices"),
    ("Ctx", "memops_buf"): Buf("iw_alloc", "int64_t", "0", "n - 1"),
    ("Ctx", "branches_buf"): Buf("iw_alloc", "int64_t", "0", "n - 1"),
    ("Ctx", "urs_buf"): Buf("n", "int64_t", "0", "n - 1"),
    ("Ctx", "fq_idx"): Buf("fq_alloc", "int64_t", "0", "n - 1"),
    ("Ctx", "fq_time"): Buf("fq_alloc", "int64_t", "0", _TIME_HI),
    ("CycleResult", "stalls"): Buf(
        "N_CATEGORIES", "int64_t", "0", "(1 << 62)", trusted=True,
        reason="per-cycle stall counters: one increment per cycle"),
}

_CYCLESIM_ENTRY = {
    "n": Sym("n"),
    "n_configs": Sym("nconfigs"),
    "configs": StructElem("nconfigs", "CycleConfig"),
    "results": StructElem("nconfigs", "CycleResult"),
    **{
        name: _CYCLESIM_BUFFERS[("Ctx", name)]
        for name in _CYCLESIM_ELEMS
    },
}

CYCLESIM_CONTRACT = KernelContract(
    path="src/repro/cyclesim/_cyclesim_kernel.c",
    entry="cyclesim_batch",
    symbols={
        "n": (0, 1 << 26),
        "nconfigs": (0, 1 << 20),
        "rob_alloc": (1, 1 << 20),
        "iw_alloc": (1, 1 << 20),
        "fq_alloc": (1, 1 << 20),
    },
    buffers=_CYCLESIM_BUFFERS,
    fields={**_CYCLESIM_FIELDS, **_CYCLESIM_CONFIG_FIELDS},
    entry_params=_CYCLESIM_ENTRY,
    python_path="src/repro/cyclesim/plan.py",
    python_name="CYCLE_PLAN_CONTRACT",
    python_facts=CYCLESIM_PLAN_FACTS,
    driver_path="src/repro/cyclesim/ckernel.py",
    driver_name="run_cycle_plan",
)


def kernel_contracts():
    """All declared kernel contracts, in certification order."""
    return (MLPSIM_CONTRACT, CYCLESIM_CONTRACT)
