"""The interval abstract interpreter over the kernels' C subset.

One :func:`analyse_kernel` call proves (or reports) every memory-safety
obligation in one kernel source:

* each function body is lowered to a statement-level CFG and solved
  with the same worklist discipline as
  :func:`repro.lint.flow.dataflow.solve_forward` — a deque of dirty
  nodes, joins at merge points — extended with *delayed widening* at
  loop heads (an endpoint may move :data:`_WIDEN_DELAY` times before
  it is widened to the type extreme, so ring-buffer bounds like
  ``rob_head <= rob_alloc - 1`` stabilise instead of blowing up) and a
  bounded narrowing sweep that re-tightens the endpoints widening
  overshot;
* a final *checking* pass replays every reachable statement against
  the fixpoint states and records an :class:`Obligation` for each
  subscript (``kernel-bounds``), each signed arithmetic result and
  narrowing store (``kernel-overflow``), each contracted store, each
  ``requires``/``returns`` annotation and each ``malloc``/``mem*``
  size;
* calls are handled with may-write summaries: a call havocs exactly
  the fields its callee (transitively) writes, after which the
  declared field invariants re-materialise — so ``execute(...)``
  erases the ``Scan`` counters it touches but not ``s.nd_len``.

Trust boundary: ``certify: assume`` annotations and ``trusted`` field
invariants are taken on faith (each must document a reason — that is
checked); everything else, including ``requires`` at call sites and
``returns`` at return statements, is proven.
"""

from collections import deque

from repro.lint.certify import intervals as iv
from repro.lint.certify.contracts import Buf, Inv, StructElem, Sym
from repro.lint.clang_parity import cparse
from repro.lint.clang_parity.cextract import extract_c

#: Joins a loop head absorbs before its unstable endpoints widen.
_WIDEN_DELAY = 4
#: Decreasing sweeps after the widened fixpoint.
_NARROW_SWEEPS = 2
#: Hard cap on worklist pops per function (divergence guard).
_MAX_VISITS = 240000
_NARROW_ROUNDS = 8

_WIDTHS = {
    "char": (8, True), "int8_t": (8, True), "uint8_t": (8, False),
    "short": (16, True), "int16_t": (16, True), "uint16_t": (16, False),
    "int": (32, True), "int32_t": (32, True), "uint32_t": (32, False),
    "long": (64, True), "int64_t": (64, True), "uint64_t": (64, False),
    "size_t": (64, False), "ptrdiff_t": (64, True),
}

_MEM_FUNCS = frozenset({"memset", "memcpy", "memmove"})


class CertifyError(Exception):
    """The analysis itself cannot proceed (not a proof failure)."""

    def __init__(self, message, lineno=0):
        super().__init__(message)
        self.lineno = lineno


class Obligation:
    """One fact the certifier had to prove."""

    __slots__ = ("kind", "lineno", "message", "ok")

    def __init__(self, kind, lineno, message, ok):
        self.kind = kind        # "bounds" | "overflow"
        self.lineno = lineno
        self.message = message
        self.ok = ok


class KernelReport:
    """Everything the certify passes need about one kernel."""

    __slots__ = ("path", "obligations", "issues", "unit", "error",
                 "checked", "proved")

    def __init__(self, path):
        self.path = path
        self.obligations = []   # failed Obligations only
        self.issues = []        # (lineno, message): annotation problems
        self.unit = None
        self.error = None       # (lineno, message): fatal parse failure
        self.checked = 0
        self.proved = 0

    def failed(self, kind):
        """The unproved obligations of one kind (``bounds``/``overflow``)."""
        return [ob for ob in self.obligations if ob.kind == kind]


# ------------------------------------------------------- expression text

def unparse(expr):
    """Compact C text of an expression, for witness messages."""
    if isinstance(expr, cparse.CNum):
        return str(expr.value)
    if isinstance(expr, cparse.CName):
        return expr.name
    if isinstance(expr, cparse.CUnary):
        return f"{expr.op}{unparse(expr.operand)}"
    if isinstance(expr, cparse.CPostfix):
        return f"{unparse(expr.operand)}{expr.op}"
    if isinstance(expr, cparse.CBinary):
        return (f"{unparse(expr.left)} {expr.op}"
                f" {unparse(expr.right)}")
    if isinstance(expr, cparse.CAssign):
        return (f"{unparse(expr.target)} {expr.op}"
                f" {unparse(expr.value)}")
    if isinstance(expr, cparse.CCond):
        return (f"{unparse(expr.cond)} ? {unparse(expr.then)}"
                f" : {unparse(expr.other)}")
    if isinstance(expr, cparse.CCall):
        args = ", ".join(unparse(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, cparse.CIndex):
        return f"{unparse(expr.base)}[{unparse(expr.index)}]"
    if isinstance(expr, cparse.CFieldRef):
        sep = "->" if expr.arrow else "."
        return f"{unparse(expr.base)}{sep}{expr.field}"
    if isinstance(expr, cparse.CCast):
        return f"({expr.ctype}){unparse(expr.operand)}"
    if isinstance(expr, cparse.CSizeof):
        inner = expr.arg if isinstance(expr.arg, str) else unparse(expr.arg)
        return f"sizeof({inner})"
    return "<expr>"


# ----------------------------------------------------- resolved contract

class _BufSpec:
    """A buffer contract with bounds folded to the affine domain."""

    __slots__ = ("name", "length", "content", "elem", "trusted")

    def __init__(self, name, length, content, elem, trusted=False):
        self.name = name
        self.length = length    # Bound (affine element count)
        self.content = content  # Interval
        self.elem = elem        # (bits, signed)
        self.trusted = trusted  # content assumed, not store-checked

    def same_as(self, other):
        return (isinstance(other, _BufSpec)
                and self.length.same_as(other.length)
                and iv.equal(self.content, other.content)
                and self.elem == other.elem)


class _StructPtr:
    __slots__ = ("struct",)

    def __init__(self, struct):
        self.struct = struct


class _ElemSpec:
    """A buffer of structs (configs / results)."""

    __slots__ = ("length", "struct")

    def __init__(self, length, struct):
        self.length = length
        self.struct = struct


class _Env:
    """Contract + extraction resolved against one kernel source."""

    def __init__(self, source, contract, extract=None):
        self.contract = contract
        self.extract = extract if extract is not None else extract_c(source)
        self.unit = cparse.parse_c_unit(source, set(self.extract.structs))
        self.defines = {
            name: d.value for name, d in self.extract.defines.items()
            if d.value is not None
        }
        self.box = dict(contract.symbols)
        self.buffers = {}
        for (owner, field), spec in contract.buffers.items():
            self.buffers[(owner, field)] = self._resolve_buf(
                f"{owner}.{field}", spec)
        self.fields = {}
        for (owner, field), inv in contract.fields.items():
            self.fields[(owner, field)] = (
                self._interval_of(inv.lo, inv.hi), inv.trusted)
        self.entry_params = {}
        for name, spec in contract.entry_params.items():
            if isinstance(spec, Sym):
                self.entry_params[name] = spec
            elif isinstance(spec, Buf):
                self.entry_params[name] = self._resolve_buf(name, spec)
            elif isinstance(spec, StructElem):
                self.entry_params[name] = _ElemSpec(
                    self._affine_text(spec.length), spec.struct)
        # Function-level ``certify: buffer`` annotations.
        self.ann_buffers = {}
        for fn in self.unit.functions.values():
            for ann in fn.param_buffers:
                name, spec = self._parse_buffer_annotation(ann)
                self.ann_buffers[(fn.name, name)] = spec
        self.ann_cache = {}
        self.ann_errors = []       # (lineno, message)
        self._returns_cache = {}

    def parse_annotation(self, ann):
        """Parsed condition of an assume/requires; None on bad text."""
        cached = self.ann_cache.get(id(ann))
        if cached is not None or id(ann) in self.ann_cache:
            return cached
        try:
            expr = cparse.parse_expression_text(
                ann.text, self.unit.typenames, ann.lineno)
        except cparse.CParseError as exc:
            self.ann_errors.append(
                (ann.lineno, f"bad certify annotation: {exc}"))
            expr = None
        self.ann_cache[id(ann)] = expr
        return expr

    def returns_interval(self, fn):
        """Declared return range of *fn*, or None."""
        if fn.name in self._returns_cache:
            return self._returns_cache[fn.name]
        result = None
        ann = fn.returns
        if ann is not None:
            try:
                lo_text, hi_text = ann.text.split("..", 1)
                result = self._interval_of(lo_text.strip(),
                                           hi_text.strip())
            except (ValueError, CertifyError, cparse.CParseError):
                self.ann_errors.append(
                    (ann.lineno,
                     f"bad returns annotation: {ann.text!r}"))
        self._returns_cache[fn.name] = result
        return result

    def type_bytes(self, text):
        """sizeof a type name (naive, padding-free for structs)."""
        base, ptr = _split_ctype(text)
        if ptr:
            return 8
        width = _WIDTHS.get(base)
        if width is not None:
            return width[0] // 8
        decl = self.extract.structs.get(base)
        if decl is None:
            return None
        total = 0
        for field in decl.fields:
            fbytes = self.type_bytes(field.ctype) or 8
            count = 1
            if field.array_len is not None:
                count = self._fold_len(field.array_len) or 1
            total += fbytes * count
        return total

    def _fold_len(self, text):
        try:
            return int(str(text), 0)
        except (TypeError, ValueError):
            return self.defines.get(str(text).strip())

    # -- bound/expression folding over symbols and defines

    def _affine_text(self, text):
        expr = cparse.parse_expression_text(text, self.unit.typenames)
        bound = self.affine_fold(expr)
        if bound is None:
            raise CertifyError(f"contract bound {text!r} is not affine"
                               " over the declared symbols")
        return bound

    def affine_fold(self, expr):
        """Fold an annotation/contract expression to an affine bound
        over symbols and defines; ``None`` when it is not one."""
        if isinstance(expr, cparse.CNum):
            return iv.Affine(expr.value)
        if isinstance(expr, cparse.CName):
            if expr.name in self.defines:
                return iv.Affine(self.defines[expr.name])
            if expr.name in self.box:
                return iv.Affine(0, {expr.name: 1})
            return None
        if isinstance(expr, cparse.CUnary) and expr.op == "-":
            inner = self.affine_fold(expr.operand)
            return None if inner is None else inner.scale(-1)
        if isinstance(expr, cparse.CBinary):
            left = self.affine_fold(expr.left)
            right = self.affine_fold(expr.right)
            if left is None or right is None:
                return None
            if expr.op == "+":
                return left.add(right)
            if expr.op == "-":
                return left.sub(right)
            if expr.op == "*":
                if left.is_const:
                    return right.scale(left.const)
                if right.is_const:
                    return left.scale(right.const)
                return None
            if expr.op == "<<" and right.is_const and left.is_const:
                return iv.Affine(left.const << right.const)
            return None
        return None

    def _interval_of(self, lo_text, hi_text):
        return iv.Interval(self._affine_text(lo_text),
                           self._affine_text(hi_text))

    def _resolve_buf(self, name, spec):
        elem = _WIDTHS.get(spec.elem)
        if elem is None:
            raise CertifyError(f"buffer {name}: unknown element type"
                               f" {spec.elem!r}")
        if spec.lo is None:
            content = iv.width_interval(*elem)
        else:
            content = self._interval_of(spec.lo, spec.hi)
        return _BufSpec(name, self._affine_text(spec.length),
                        content, elem, trusted=spec.trusted)

    def _parse_buffer_annotation(self, ann):
        # ``buffer <param> length <expr> content <lo> .. <hi>``
        try:
            rest = ann.text
            name, rest = rest.split(None, 1)
            _, rest = rest.split("length", 1)
            length_text, rest = rest.split("content", 1)
            lo_text, hi_text = rest.split("..", 1)
        except ValueError:
            raise CertifyError(
                f"malformed buffer annotation: {ann.text!r}", ann.lineno
            ) from None
        length = self._affine_text(length_text.strip())
        content = iv.Interval(self._affine_text(lo_text.strip()),
                              self._affine_text(hi_text.strip()))
        return name, _BufSpec(f"{name} (annotated)", length, content,
                              (64, True))

    # -- struct lookups

    def struct_field(self, struct, field):
        decl = self.extract.structs.get(struct)
        if decl is None:
            return None
        for f in decl.fields:
            if f.name == field:
                return f
        return None

    def field_invariant(self, struct, field):
        return self.fields.get((struct, field))

    def field_buffer(self, struct, field):
        return self.buffers.get((struct, field))

    def width_of(self, ctype):
        return _WIDTHS.get(ctype.replace("const ", "").strip())


# ------------------------------------------------------- abstract state

class _State:
    __slots__ = ("scalars", "ptrs", "reachable")

    def __init__(self, scalars=None, ptrs=None, reachable=True):
        self.scalars = dict(scalars or {})
        self.ptrs = dict(ptrs or {})
        self.reachable = reachable

    def clone(self):
        return _State(self.scalars, self.ptrs, self.reachable)


class _Value:
    """Result of evaluating one expression."""

    __slots__ = ("interval", "ct", "ref", "key")

    def __init__(self, interval=iv.TOP, ct=(64, True), ref=None, key=None):
        self.interval = interval
        self.ct = ct          # (bits, signed) or None for pointers
        self.ref = ref        # _BufSpec | _StructPtr | _ElemSpec | None
        self.key = key        # state key for lvalues


def _pure(expr):
    """No assignments, ``++``/``--`` or calls anywhere inside."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, (cparse.CAssign, cparse.CPostfix,
                             cparse.CCall)):
            return False
        if isinstance(node, cparse.CUnary):
            if node.op in ("++", "--"):
                return False
            stack.append(node.operand)
        elif isinstance(node, cparse.CBinary):
            stack.extend((node.left, node.right))
        elif isinstance(node, cparse.CCond):
            stack.extend((node.cond, node.then, node.other))
        elif isinstance(node, cparse.CIndex):
            stack.extend((node.base, node.index))
        elif isinstance(node, cparse.CFieldRef):
            stack.append(node.base)
        elif isinstance(node, cparse.CCast):
            stack.append(node.operand)
        elif isinstance(node, cparse.CSizeof):
            if not isinstance(node.arg, str):
                stack.append(node.arg)
    return True


# ----------------------------------------------------------- control flow

class _Node:
    __slots__ = ("kind", "payload", "assumes", "succs", "loop_head",
                 "lineno")

    def __init__(self, kind, payload, assumes=(), lineno=0):
        self.kind = kind        # "stmt" | "branch" | "nop"
        self.payload = payload
        self.assumes = list(assumes)
        self.succs = []         # (node_id, cond_expr|None, sense)
        self.loop_head = False
        self.lineno = lineno


class _Cfg:
    def __init__(self):
        self.nodes = []

    def add(self, kind, payload, assumes=(), lineno=0):
        self.nodes.append(_Node(kind, payload, assumes, lineno))
        return len(self.nodes) - 1

    def edge(self, src, dst, cond=None, sense=True, back=False):
        self.nodes[src].succs.append((dst, cond, sense, back))


def _lower_function(fn):
    """Statement-level CFG: returns (cfg, entry_id, exit_id)."""
    cfg = _Cfg()
    entry = cfg.add("nop", None)
    exit_id = cfg.add("nop", None)
    loops = []  # (continue_target, break_target)

    def lower_block(stmts, preds):
        # preds: list of (node, cond, sense) dangling edges.
        for stmt in stmts:
            preds = lower_stmt(stmt, preds)
        return preds

    def connect(preds, target, back=False):
        for node, cond, sense in preds:
            cfg.edge(node, target, cond, sense, back)

    def lower_stmt(stmt, preds):
        if isinstance(stmt, (cparse.CExprStmt, cparse.CDeclStmt)):
            node = cfg.add("stmt", stmt, stmt.assumes, stmt.lineno)
            connect(preds, node)
            return [(node, None, True)]
        if isinstance(stmt, cparse.CReturn):
            node = cfg.add("stmt", stmt, stmt.assumes, stmt.lineno)
            connect(preds, node)
            cfg.edge(node, exit_id)
            return []
        if isinstance(stmt, cparse.CBreak):
            node = cfg.add("nop", None, stmt.assumes, stmt.lineno)
            connect(preds, node)
            cfg.edge(node, loops[-1][1])
            return []
        if isinstance(stmt, cparse.CContinue):
            node = cfg.add("nop", None, stmt.assumes, stmt.lineno)
            connect(preds, node)
            cfg.edge(node, loops[-1][0], back=True)
            return []
        if isinstance(stmt, cparse.CIf):
            node = cfg.add("branch", stmt.cond, stmt.assumes, stmt.lineno)
            connect(preds, node)
            then_exits = lower_block(stmt.then, [(node, stmt.cond, True)])
            else_exits = lower_block(stmt.orelse,
                                     [(node, stmt.cond, False)])
            return then_exits + else_exits
        if isinstance(stmt, cparse.CWhile):
            head = cfg.add("branch", stmt.cond, stmt.assumes, stmt.lineno)
            cfg.nodes[head].loop_head = True
            connect(preds, head)
            after = cfg.add("nop", None)
            cfg.edge(head, after, stmt.cond, False)
            loops.append((head, after))
            body_exits = lower_block(stmt.body, [(head, stmt.cond, True)])
            loops.pop()
            connect(body_exits, head, back=True)
            return [(after, None, True)]
        if isinstance(stmt, cparse.CFor):
            if stmt.init is not None:
                preds = lower_stmt(stmt.init, preds)
            head = cfg.add("branch", stmt.cond, stmt.assumes, stmt.lineno)
            cfg.nodes[head].loop_head = True
            connect(preds, head)
            after = cfg.add("nop", None)
            if stmt.cond is not None:
                cfg.edge(head, after, stmt.cond, False)
            step_node = cfg.add(
                "stmt",
                cparse.CExprStmt(stmt.step, stmt.step.lineno)
                if stmt.step is not None else None,
                lineno=stmt.lineno,
            )
            if cfg.nodes[step_node].payload is None:
                cfg.nodes[step_node].kind = "nop"
            loops.append((step_node, after))
            body_exits = lower_block(stmt.body,
                                     [(head, stmt.cond, True)])
            loops.pop()
            connect(body_exits, step_node)
            cfg.edge(step_node, head, back=True)
            return [(after, None, True)]
        raise CertifyError(
            f"unsupported statement {type(stmt).__name__}", stmt.lineno
        )

    exits = lower_block(fn.body, [(entry, None, True)])
    connect(exits, exit_id)
    return cfg, entry, exit_id


# --------------------------------------------------- may-write summaries

def _direct_writes(fn):
    """Keys of the form (root_param, suffix) this body assigns, where
    suffix is the normalised field path (``"->f"``, ``"->f.g"``) or
    ``"*"`` for a pointee write."""
    params = {name for name, _, _ in fn.params}
    writes = set()
    calls = []

    def record(target):
        if (isinstance(target, cparse.CIndex)
                and isinstance(target.base, cparse.CName)
                and target.base.name in params):
            # Element writes only matter for call-site content checks.
            writes.add((target.base.name, "[]"))
            return
        key = _target_template(target, params)
        if key is not None:
            writes.add(key)

    def walk(expr):
        if isinstance(expr, cparse.CAssign):
            record(expr.target)
            walk(expr.target)
            walk(expr.value)
        elif isinstance(expr, (cparse.CPostfix,)):
            record(expr.operand)
            walk(expr.operand)
        elif isinstance(expr, cparse.CUnary):
            if expr.op in ("++", "--"):
                record(expr.operand)
            walk(expr.operand)
        elif isinstance(expr, cparse.CBinary):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, cparse.CCond):
            walk(expr.cond)
            walk(expr.then)
            walk(expr.other)
        elif isinstance(expr, cparse.CIndex):
            walk(expr.base)
            walk(expr.index)
        elif isinstance(expr, cparse.CFieldRef):
            walk(expr.base)
        elif isinstance(expr, cparse.CCast):
            walk(expr.operand)
        elif isinstance(expr, cparse.CCall):
            calls.append(expr)
            for arg in expr.args:
                walk(arg)

    for stmt in cparse._walk_statements(fn.body):
        for expr in _stmt_exprs(stmt):
            walk(expr)
    return writes, calls


def _stmt_exprs(stmt):
    if isinstance(stmt, cparse.CExprStmt):
        yield stmt.expr
    elif isinstance(stmt, cparse.CDeclStmt):
        for decl in stmt.decls:
            if decl.init is not None:
                yield decl.init
    elif isinstance(stmt, cparse.CReturn):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, cparse.CIf):
        yield stmt.cond
    elif isinstance(stmt, cparse.CWhile):
        yield stmt.cond
    elif isinstance(stmt, cparse.CFor):
        if stmt.cond is not None:
            yield stmt.cond
        if stmt.step is not None:
            yield stmt.step


def _target_template(target, params):
    """``(root_param, suffix)`` for a write through a parameter."""
    if isinstance(target, cparse.CUnary) and target.op == "*":
        if (isinstance(target.operand, cparse.CName)
                and target.operand.name in params):
            return (target.operand.name, "*")
        return None
    parts = []
    node = target
    while isinstance(node, cparse.CFieldRef):
        parts.append(("->" if node.arrow else ".") + node.field)
        node = node.base
    if isinstance(node, cparse.CName) and node.name in params and parts:
        return (node.name, "".join(reversed(parts)))
    return None


def _summaries(unit):
    """Transitive may-write templates per function."""
    direct = {}
    callgraph = {}
    for name, fn in unit.functions.items():
        writes, calls = _direct_writes(fn)
        direct[name] = writes
        callgraph[name] = calls
    summaries = {name: set(w) for name, w in direct.items()}
    changed = True
    while changed:
        changed = False
        for name, calls in callgraph.items():
            fn = unit.functions[name]
            params = {p for p, _, _ in fn.params}
            for call in calls:
                callee = unit.functions.get(call.name)
                if callee is None:
                    continue
                mapped = _map_templates(
                    summaries[call.name], callee, call, params)
                if not mapped <= summaries[name]:
                    summaries[name] |= mapped
                    changed = True
    return summaries


def _map_templates(templates, callee, call, caller_params):
    """Rewrite callee write templates through one call's arguments to
    caller-relative templates (only those rooted at caller params are
    propagated further; the interpreter maps the rest locally)."""
    out = set()
    args = dict(zip((p for p, _, _ in callee.params), call.args))
    for root, suffix in templates:
        arg = args.get(root)
        if arg is None:
            continue
        mapped = _rebase_template(arg, suffix, caller_params)
        if mapped is not None:
            out.add(mapped)
    return out


def _rebase_template(arg, suffix, roots):
    """The caller-side template for a callee write ``root{suffix}``
    when *root* is bound to *arg*; ``None`` if untracked."""
    if isinstance(arg, cparse.CCast):
        arg = arg.operand
    if isinstance(arg, cparse.CName):
        if arg.name not in roots:
            return None
        return (arg.name, suffix)
    if suffix == "[]":
        # Element writes propagate only through plain-name arguments.
        return None
    if isinstance(arg, cparse.CUnary) and arg.op == "&":
        inner = arg.operand
        if suffix == "*":
            return _target_template(inner, roots)
        # ``(&x)->f`` is ``x.f``: swap the leading arrow for a dot.
        new_suffix = "." + suffix[2:] if suffix.startswith("->") else suffix
        prefix = _target_template(
            cparse.CFieldRef(inner, "_", False, inner.lineno), roots)
        if prefix is None:
            return None
        root, pre = prefix
        return (root, pre[:-2] + new_suffix)
    return None


def _havoc_keys(arg, suffix):
    """State keys to drop in the *caller* for one callee write."""
    if isinstance(arg, cparse.CCast):
        arg = arg.operand
    if isinstance(arg, cparse.CName):
        if suffix == "*":
            return [f"*{arg.name}"]
        return [f"{arg.name}{suffix}"]
    if isinstance(arg, cparse.CUnary) and arg.op == "&":
        base = _key_text(arg.operand)
        if base is None:
            return []
        if suffix == "*":
            return [base]
        joined = "." + suffix[2:] if suffix.startswith("->") else suffix
        return [f"{base}{joined}"]
    return []


def _key_text(expr):
    """The state key an lvalue expression denotes, or ``None``."""
    if isinstance(expr, cparse.CName):
        return expr.name
    if isinstance(expr, cparse.CFieldRef):
        base = _key_text(expr.base)
        if base is None:
            return None
        return f"{base}{'->' if expr.arrow else '.'}{expr.field}"
    if isinstance(expr, cparse.CUnary) and expr.op == "*":
        base = _key_text(expr.operand)
        return None if base is None else f"*{base}"
    return None


# ------------------------------------------------------------ type info

_CMP_OPS = frozenset({"<", "<=", ">", ">=", "==", "!="})
_NEG_OP = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
           "==": "!=", "!=": "=="}
_FLIP_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
            "==": "==", "!=": "!="}


def _split_ctype(text):
    """``('int64_t', ptr_depth)`` from a normalised ctype string."""
    t = text.replace("const", " ").strip()
    ptr = t.count("*")
    return t.replace("*", " ").strip(), ptr


def _strip_casts(expr):
    while isinstance(expr, cparse.CCast):
        expr = expr.operand
    return expr


def _const_fold(expr, env):
    """Integer value of a compile-time-constant expression, or None."""
    expr = _strip_casts(expr)
    if isinstance(expr, cparse.CNum):
        return expr.value
    if isinstance(expr, cparse.CName):
        return env.defines.get(expr.name)
    if isinstance(expr, cparse.CSizeof):
        if isinstance(expr.arg, str):
            return env.type_bytes(expr.arg)
        return None
    if isinstance(expr, cparse.CUnary):
        inner = _const_fold(expr.operand, env)
        if inner is None:
            return None
        if expr.op == "-":
            return -inner
        if expr.op == "~":
            return ~inner
        if expr.op == "!":
            return int(inner == 0)
        return None
    if isinstance(expr, cparse.CBinary):
        left = _const_fold(expr.left, env)
        right = _const_fold(expr.right, env)
        if left is None or right is None:
            return None
        ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
               "*": lambda a, b: a * b, "<<": lambda a, b: a << b,
               ">>": lambda a, b: a >> b, "&": lambda a, b: a & b,
               "|": lambda a, b: a | b, "^": lambda a, b: a ^ b}
        fn = ops.get(expr.op)
        return fn(left, right) if fn else None
    return None


def _split_ptr_arith(expr):
    """``(base, offset_or_None)`` for ``buf`` / ``buf + k``."""
    expr = _strip_casts(expr)
    if isinstance(expr, cparse.CBinary) and expr.op == "+":
        return expr.left, expr.right
    return expr, None


def _prove_cmp(op, a, b, box):
    """Is ``a OP b`` certain, comparing two intervals endpoint-wise?"""
    one = iv.const_bound(1)
    if op == "<=":
        return iv.bound_le(a.hi, b.lo, box)
    if op == "<":
        return iv.bound_le(iv.bound_add(a.hi, one), b.lo, box)
    if op == ">=":
        return iv.bound_le(b.hi, a.lo, box)
    if op == ">":
        return iv.bound_le(iv.bound_add(b.hi, one), a.lo, box)
    if op == "==":
        return (iv.bound_le(a.hi, b.lo, box)
                and iv.bound_le(b.hi, a.lo, box))
    if op == "!=":
        return (_prove_cmp("<", a, b, box)
                or _prove_cmp(">", a, b, box))
    return False


def _cmp_refine(cur, op, bound_iv, box):
    """Meet *cur* with the values satisfying ``x OP bound_iv``."""
    minus_one = iv.const_bound(-1)
    one = iv.const_bound(1)
    if op == "<=":
        return iv.meet(cur, iv.Interval(iv.NEG_INF, bound_iv.hi), box)
    if op == "<":
        return iv.meet(cur, iv.Interval(
            iv.NEG_INF, iv.bound_add(bound_iv.hi, minus_one)), box)
    if op == ">=":
        return iv.meet(cur, iv.Interval(bound_iv.lo, iv.POS_INF), box)
    if op == ">":
        return iv.meet(cur, iv.Interval(
            iv.bound_add(bound_iv.lo, one), iv.POS_INF), box)
    if op == "==":
        return iv.meet(cur, bound_iv, box)
    if op == "!=":
        # Endpoint exclusion when the excluded value is a single bound.
        lo, hi = bound_iv.lo, bound_iv.hi
        if (not isinstance(lo, iv.Inf) and not isinstance(hi, iv.Inf)
                and lo.same_as(hi) and not cur.is_bottom):
            if not isinstance(cur.hi, iv.Inf) and cur.hi.same_as(lo):
                return iv.meet(cur, iv.Interval(
                    iv.NEG_INF, iv.bound_add(lo, minus_one)), box)
            if not isinstance(cur.lo, iv.Inf) and cur.lo.same_as(lo):
                return iv.meet(cur, iv.Interval(
                    iv.bound_add(lo, one), iv.POS_INF), box)
        return cur
    return cur


def _cmp_impossible(op, total, box):
    """Is ``total OP 0`` false for every concrete run?"""
    zero = iv.const_bound(0)
    one = iv.const_bound(1)
    if total.is_bottom:
        return False
    if op == "<":
        return iv.bound_le(zero, total.lo, box)
    if op == "<=":
        return iv.bound_le(one, total.lo, box)
    if op == ">":
        return iv.bound_le(total.hi, zero, box)
    if op == ">=":
        return iv.bound_le(total.hi, iv.const_bound(-1), box)
    if op == "==":
        return (iv.bound_le(one, total.lo, box)
                or iv.bound_le(total.hi, iv.const_bound(-1), box))
    if op == "!=":
        return (not isinstance(total.lo, iv.Inf)
                and not isinstance(total.hi, iv.Inf)
                and total.lo.is_const and total.lo.const == 0
                and total.hi.is_const and total.hi.const == 0)
    return False


# --------------------------------------------------- per-function engine

class _FnCore:
    """State/metadata half of the per-function engine (see :class:`_Fn`)."""

    def __init__(self, env, fn, summaries, sink):
        self.env = env
        self.fn = fn
        self.summaries = summaries
        self.sink = sink       # (kind, lineno, message) -> ok
        self.box = env.box
        self.is_entry = fn.name == env.contract.entry
        self.var_types = {name: (base, ptr)
                          for name, base, ptr in fn.params}
        for stmt in cparse._walk_statements(fn.body):
            if isinstance(stmt, cparse.CDeclStmt):
                for decl in stmt.decls:
                    self.var_types[decl.name] = (stmt.base_type, decl.ptr)
        # key -> (ct, default Interval, checked_inv|None, trusted)
        self.key_meta = {}
        self.local_bufs = {}
        self.checking = False

    # -- obligations

    def oblige(self, kind, lineno, ok, message):
        if not self.checking:
            return
        key = (kind, lineno, message)
        prev = self.sink.get(key, True)
        self.sink[key] = prev and ok

    # -- key metadata and state access

    def _note_key(self, key, ct, inv_pair):
        meta = self.key_meta.get(key)
        if meta is not None:
            return meta
        if inv_pair is not None:
            default = inv_pair[0]
            trusted = inv_pair[1]
            checked = None if trusted else inv_pair[0]
        else:
            default = iv.width_interval(*ct) if ct else iv.TOP
            checked = None
            trusted = False
        meta = (ct, default, checked, trusted)
        self.key_meta[key] = meta
        return meta

    def default_iv(self, key):
        meta = self.key_meta.get(key)
        return meta[1] if meta else iv.TOP

    def get_iv(self, state, key):
        val = state.scalars.get(key)
        return val if val is not None else self.default_iv(key)

    # -- entry state

    def entry_state(self):
        state = _State()
        if self.is_entry:
            for pname, ptype, pptr in self.fn.params:
                spec = self.env.entry_params.get(pname)
                if isinstance(spec, Sym) and pptr == 0:
                    ct = self.env.width_of(ptype) or (64, True)
                    self._note_key(pname, ct, None)
                    state.scalars[pname] = iv.symbol_interval(spec.name)
        for ann in self.fn.requires:
            cond = self.env.parse_annotation(ann)
            if cond is not None:
                self.refine_into(state, cond, True)
        return state

    # -- linear forms: {state_key: coeff} + Interval rest.  Affine
    #    endpoints in the rest cancel through symbols; the coefficient
    #    map cancels through mutable variables, recovering relational
    #    facts (``k + (*count - k)`` -> ``*count``) the plain interval
    #    evaluation loses.

    def _pure_eval(self, expr, state):
        saved = self.checking
        self.checking = False
        try:
            return self.eval(expr, state.clone())
        finally:
            self.checking = saved

    def _form(self, expr, state):
        expr = _strip_casts(expr)
        if isinstance(expr, cparse.CNum):
            return ({}, iv.const_interval(expr.value))
        if isinstance(expr, cparse.CSizeof):
            size = self._sizeof(expr)
            return None if size is None else ({}, iv.const_interval(size))
        if isinstance(expr, cparse.CName):
            name = expr.name
            if name not in self.var_types:
                if name in self.env.defines:
                    return ({}, iv.const_interval(self.env.defines[name]))
                if name in self.box:
                    return ({}, iv.symbol_interval(name))
                return None
        if isinstance(expr, cparse.CBinary) and expr.op in ("+", "-"):
            left = self._form(expr.left, state)
            right = self._form(expr.right, state)
            if left is None or right is None:
                return None
            if expr.op == "-":
                right = _form_scale(right, -1)
            return _form_add(left, right)
        if isinstance(expr, cparse.CBinary) and expr.op == "*":
            for side, other in ((expr.left, expr.right),
                                (expr.right, expr.left)):
                k = _const_fold(side, self.env)
                if k is not None:
                    inner = self._form(other, state)
                    return None if inner is None else _form_scale(inner, k)
        if not _pure(expr):
            return None
        value = self._pure_eval(expr, state)
        if value.ct is None:
            return None
        if value.key is not None:
            return ({value.key: 1}, iv.const_interval(0))
        return ({}, value.interval)

    def _form_total(self, form, state):
        coeffs, rest = form
        total = rest
        for key, coeff in coeffs.items():
            term = iv.mul(self.get_iv(state, key),
                          iv.const_interval(coeff), self.box)
            total = iv.add(total, term)
        return total

    def _form_interval(self, expr, state, fallback=None):
        """Best interval for an index/size expression."""
        if _pure(expr):
            form = self._form(expr, state)
            if form is not None:
                return self._form_total(form, state)
        if fallback is not None:
            return fallback
        return self._pure_eval(expr, state).interval


def _form_add(a, b):
    coeffs = dict(a[0])
    for key, coeff in b[0].items():
        coeffs[key] = coeffs.get(key, 0) + coeff
        if coeffs[key] == 0:
            del coeffs[key]
    return (coeffs, iv.add(a[1], b[1]))


def _form_scale(form, k):
    coeffs = {key: c * k for key, c in form[0].items()}
    rest = form[1]
    if k >= 0:
        rest = iv.Interval(iv.bound_scale(rest.lo, k),
                           iv.bound_scale(rest.hi, k))
    else:
        rest = iv.Interval(iv.bound_scale(rest.hi, k),
                           iv.bound_scale(rest.lo, k))
    return (coeffs, rest)


class _FnEval:
    """Mixin half of :class:`_Fn`: the expression evaluator."""

    # -- dispatch

    def eval(self, expr, state):
        if isinstance(expr, cparse.CNum):
            return _Value(iv.const_interval(expr.value),
                          (64, not expr.unsigned))
        if isinstance(expr, cparse.CName):
            return self._eval_name(expr, state)
        if isinstance(expr, cparse.CFieldRef):
            return self._eval_field(expr, state)
        if isinstance(expr, cparse.CIndex):
            return self._eval_index(expr, state)
        if isinstance(expr, cparse.CUnary):
            return self._eval_unary(expr, state)
        if isinstance(expr, cparse.CPostfix):
            return self._incdec(expr.operand, expr.op, state,
                                expr.lineno, post=True)
        if isinstance(expr, cparse.CBinary):
            return self._eval_binary(expr, state)
        if isinstance(expr, cparse.CAssign):
            return self._eval_assign(expr, state)
        if isinstance(expr, cparse.CCond):
            return self._eval_cond(expr, state)
        if isinstance(expr, cparse.CCall):
            return self._eval_call(expr, state)
        if isinstance(expr, cparse.CCast):
            return self._eval_cast(expr, state)
        if isinstance(expr, cparse.CSizeof):
            size = self._sizeof(expr)
            if size is None:
                raise CertifyError(f"cannot size {unparse(expr)}",
                                   expr.lineno)
            return _Value(iv.const_interval(size), (64, False))
        raise CertifyError(
            f"unsupported expression {type(expr).__name__}", expr.lineno)

    def _sizeof(self, expr):
        if isinstance(expr.arg, str):
            return self.env.type_bytes(expr.arg)
        arg = _strip_casts(expr.arg)
        if isinstance(arg, cparse.CUnary) and arg.op == "*":
            arg = arg.operand
        if isinstance(arg, cparse.CName):
            vt = self.var_types.get(arg.name)
            if vt is not None:
                return self.env.type_bytes(vt[0])
        return None

    # -- names, fields, places

    def _eval_name(self, expr, state):
        name = expr.name
        vt = self.var_types.get(name)
        if vt is not None:
            base, ptr = vt
            structs = self.env.extract.structs
            if ptr > 0 or base in structs:
                return self._pointer_value(name, base, ptr, state)
            ct = self.env.width_of(base) or (64, True)
            self._note_key(name, ct, None)
            return _Value(self.get_iv(state, name), ct, key=name)
        if name in self.env.defines:
            return _Value(iv.const_interval(self.env.defines[name]),
                          (64, True))
        if name in self.box:
            return _Value(iv.symbol_interval(name), (64, True))
        raise CertifyError(f"unknown identifier {name!r}", expr.lineno)

    def _pointer_value(self, name, base, ptr, state):
        if self.is_entry:
            spec = self.env.entry_params.get(name)
            if isinstance(spec, (_BufSpec, _ElemSpec)):
                return _Value(ct=None, ref=spec, key=name)
        ref = state.ptrs.get(name)
        if ref is None:
            ref = self.local_bufs.get(name)
        if ref is None:
            ref = self.env.ann_buffers.get((self.fn.name, name))
        if ref is None and base in self.env.extract.structs:
            ref = _StructPtr(base)
        return _Value(ct=None, ref=ref, key=name)

    def _place(self, expr, state):
        """``(struct, key_prefix_or_None)`` for a struct-typed lvalue."""
        if isinstance(expr, cparse.CName):
            vt = self.var_types.get(expr.name)
            if (vt and vt[0] in self.env.extract.structs
                    and vt[1] <= 1):
                return (vt[0], expr.name)
            return None
        if isinstance(expr, cparse.CFieldRef):
            value = self._eval_field(expr, state)
            if isinstance(value.ref, _StructPtr):
                return (value.ref.struct, value.key)
            return None
        if isinstance(expr, cparse.CIndex):
            value = self._eval_index(expr, state)
            if isinstance(value.ref, _StructPtr):
                return (value.ref.struct, None)
            return None
        return None

    def _eval_field(self, expr, state):
        place = self._place(expr.base, state)
        if place is None:
            raise CertifyError(
                f"cannot resolve {unparse(expr)}", expr.lineno)
        struct, prefix = place
        fdecl = self.env.struct_field(struct, expr.field)
        if fdecl is None:
            raise CertifyError(
                f"no field {expr.field!r} in struct {struct}",
                expr.lineno)
        sep = "->" if expr.arrow else "."
        key = f"{prefix}{sep}{expr.field}" if prefix else None
        fbase, fptr = _split_ctype(fdecl.ctype)
        structs = self.env.extract.structs
        if fbase in structs:
            return _Value(ct=None, ref=_StructPtr(fbase), key=key)
        if fptr > 0 or fdecl.array_len is not None:
            ref = self.env.field_buffer(struct, expr.field)
            return _Value(ct=None, ref=ref, key=key)
        ct = self.env.width_of(fbase) or (64, True)
        inv_pair = self.env.field_invariant(struct, expr.field)
        if key is not None:
            self._note_key(key, ct, inv_pair)
            return _Value(self.get_iv(state, key), ct, key=key)
        interval = inv_pair[0] if inv_pair else iv.width_interval(*ct)
        return _Value(interval, ct)

    # -- subscripts

    def _eval_index(self, expr, state, store=None):
        base = self.eval(expr.base, state)
        idx = self.eval(expr.index, state)
        spec = base.ref
        text = unparse(expr)
        if isinstance(spec, _BufSpec):
            self._check_bounds(expr.index, idx, spec.length, state,
                               expr.lineno, text, spec.name)
            if store is not None and not spec.trusted:
                ok = iv.contains(spec.content, store.interval, self.box)
                self.oblige(
                    "bounds", expr.lineno, ok,
                    f"store {text}: value in {store.interval!r}, "
                    f"contract [{spec.content.lo!r}, "
                    f"{spec.content.hi!r}]")
                return store
            return _Value(spec.content, spec.elem)
        if isinstance(spec, _ElemSpec):
            self._check_bounds(expr.index, idx, spec.length, state,
                               expr.lineno, text, f"{spec.struct}[]")
            return _Value(ct=None, ref=_StructPtr(spec.struct))
        self.oblige("bounds", expr.lineno, False,
                    f"subscript {text}: no buffer contract for the base")
        return store if store is not None else _Value(iv.TOP, (64, True))

    def _check_bounds(self, idx_ast, idx_val, length, state, lineno,
                      text, bufname):
        idx_iv = self._form_interval(idx_ast, state,
                                     fallback=idx_val.interval)
        ok = (iv.bound_le(iv.const_bound(0), idx_iv.lo, self.box)
              and iv.bound_le(idx_iv.hi, length.shift(-1), self.box))
        self.oblige("bounds", lineno, ok,
                    f"subscript {text}: index in {idx_iv!r}, "
                    f"{bufname} length {length!r}")

    # -- unary / arithmetic

    def _eval_unary(self, expr, state):
        op = expr.op
        if op == "&":
            place = self._place(expr.operand, state)
            if place is not None:
                return _Value(ct=None, ref=_StructPtr(place[0]))
            return _Value(ct=None)
        if op == "*":
            inner = self.eval(expr.operand, state)
            if isinstance(inner.ref, _BufSpec):
                ok = iv.bound_le(iv.const_bound(1), inner.ref.length,
                                 self.box)
                self.oblige("bounds", expr.lineno, ok,
                            f"deref {unparse(expr)}: buffer length "
                            f"{inner.ref.length!r} may be 0")
                return _Value(inner.ref.content, inner.ref.elem)
            if inner.key is not None:
                vt = self.var_types.get(inner.key)
                if vt and vt[1] == 1:
                    ct = self.env.width_of(vt[0]) or (64, True)
                    key = f"*{inner.key}"
                    self._note_key(key, ct, None)
                    return _Value(self.get_iv(state, key), ct, key=key)
            raise CertifyError(
                f"cannot dereference {unparse(expr)}", expr.lineno)
        if op in ("++", "--"):
            return self._incdec(expr.operand, op, state, expr.lineno,
                                post=False)
        value = self.eval(expr.operand, state)
        ct = value.ct or (64, True)
        if op == "-":
            return self._arith(iv.neg(value.interval), ct,
                               expr.lineno, unparse(expr))
        if op == "!":
            zero = iv.const_interval(0)
            if _prove_cmp("==", value.interval, zero, self.box):
                return _Value(iv.const_interval(1), (32, True))
            if _prove_cmp("!=", value.interval, zero, self.box):
                return _Value(zero, (32, True))
            return _Value(iv.Interval(iv.const_bound(0),
                                      iv.const_bound(1)), (32, True))
        if op == "~":
            return _Value(iv.width_interval(*ct), ct)
        raise CertifyError(f"unsupported unary {op!r}", expr.lineno)

    def _arith(self, result, ct, lineno, text):
        width = iv.width_interval(*ct)
        if not iv.contains(width, result, self.box):
            if ct[1]:
                self.oblige("overflow", lineno, False,
                            f"{text}: result in {result!r} exceeds "
                            f"int{ct[0]}")
            else:
                result = width
        return _Value(result, ct)

    def _promote(self, lct, rct):
        lct = lct or (64, True)
        rct = rct or (64, True)
        bits = max(32, lct[0], rct[0])
        signed = not any(ct[0] == bits and not ct[1]
                         for ct in (lct, rct))
        return (bits, signed)

    def _apply_op(self, op, left, right, lineno, text):
        ct = self._promote(left.ct, right.ct)
        a, b = left.interval, right.interval
        box = self.box
        if op == "+":
            res = iv.add(a, b)
        elif op == "-":
            res = iv.sub(a, b)
        elif op == "*":
            res = iv.mul(a, b, box)
        elif op == "/":
            res = iv.div(a, b, box)
        elif op == "%":
            res = iv.mod(a, b, box)
        elif op == "<<":
            res = iv.shl(a, b, box)
        elif op == ">>":
            res = iv.shr(a, b, box)
        elif op == "&":
            res = iv.bitand(a, b, box)
        elif op in ("|", "^"):
            res = iv.bitor(a, b, box)
        else:
            raise CertifyError(f"unsupported operator {op!r}", lineno)
        return self._arith(res, ct, lineno, text)

    def _eval_binary(self, expr, state):
        op = expr.op
        if op in ("&&", "||"):
            left = self.eval(expr.left, state)
            branch = state.clone()
            reachable = self.refine_into(branch, expr.left, op == "&&")
            if reachable:
                self.eval(expr.right, branch)
            zero = iv.const_interval(0)
            if op == "&&" and _prove_cmp("==", left.interval, zero,
                                         self.box):
                return _Value(zero, (32, True))
            return _Value(iv.Interval(iv.const_bound(0),
                                      iv.const_bound(1)), (32, True))
        left = self.eval(expr.left, state)
        right = self.eval(expr.right, state)
        if op in _CMP_OPS:
            form = None
            if _pure(expr.left) and _pure(expr.right):
                lf = self._form(expr.left, state)
                rf = self._form(expr.right, state)
                if lf is not None and rf is not None:
                    form = _form_add(lf, _form_scale(rf, -1))
            if form is not None:
                total = self._form_total(form, state)
                zero = iv.const_interval(0)
                if _prove_cmp(op, total, zero, self.box):
                    return _Value(iv.const_interval(1), (32, True))
                if _cmp_impossible(op, total, self.box):
                    return _Value(iv.const_interval(0), (32, True))
            return _Value(iv.Interval(iv.const_bound(0),
                                      iv.const_bound(1)), (32, True))
        if isinstance(left.ref, (_BufSpec, _ElemSpec)) and op in "+-":
            # Pointer arithmetic: keep the buffer, lose the offset
            # (mem* handlers re-derive offsets from the AST).
            return _Value(ct=None, ref=None, key=None)
        return self._apply_op(op, left, right, expr.lineno,
                              unparse(expr))

    def _eval_cast(self, expr, state):
        value = self.eval(expr.operand, state)
        base, ptr = _split_ctype(expr.ctype)
        if ptr > 0 or base in self.env.extract.structs:
            return _Value(value.interval, None, ref=value.ref,
                          key=value.key)
        ct = self.env.width_of(base)
        if ct is None:
            return value
        if value.ct is None:
            return _Value(iv.width_interval(*ct), ct)
        result = value.interval
        width = iv.width_interval(*ct)
        if not iv.contains(width, result, self.box):
            if ct[1]:
                self.oblige("overflow", expr.lineno, False,
                            f"cast {unparse(expr)}: value in "
                            f"{result!r} exceeds int{ct[0]}")
            else:
                result = width
        return _Value(result, ct, key=value.key)

    def _eval_cond(self, expr, state):
        self.eval(expr.cond, state)
        then_state = state.clone()
        then_ok = self.refine_into(then_state, expr.cond, True)
        else_state = state.clone()
        else_ok = self.refine_into(else_state, expr.cond, False)
        then_val = (self.eval(expr.then, then_state)
                    if then_ok else None)
        else_val = (self.eval(expr.other, else_state)
                    if else_ok else None)
        if then_val is None and else_val is None:
            return _Value(iv.BOTTOM, (64, True))
        if then_val is None:
            return else_val
        if else_val is None:
            return then_val
        res = iv.join(then_val.interval, else_val.interval, self.box)
        ct = self._promote(then_val.ct, else_val.ct)
        res = self._max_pattern(expr, state, res)
        return _Value(res, ct)

    def _max_pattern(self, expr, state, res):
        """``E ? E : K`` / ``E > 0 ? E : K`` with ``K >= 0`` const and
        ``E >= 0``: the result is at least ``E`` — recover the affine
        lower bound the branch join had to drop."""
        k = _const_fold(expr.other, self.env)
        if k is None or k < 0:
            return res
        core = _strip_casts(expr.cond)
        if (isinstance(core, cparse.CBinary) and core.op in (">", "!=")
                and _const_fold(core.right, self.env) == 0):
            core = core.left
        core = _strip_casts(core)
        then_core = _strip_casts(expr.then)
        if unparse(core) != unparse(then_core):
            return res
        base = self._pure_eval(then_core, state)
        if base.ct is None:
            return res
        lo = self._form_interval(then_core, state,
                                 fallback=base.interval).lo
        if iv.bound_le(iv.const_bound(0), lo, self.box):
            return iv.Interval(lo, res.hi)
        return res


class _FnStores:
    """Mixin: assignments, calls, memory intrinsics, refinement."""

    # -- scalar stores

    def _store_key(self, key, value, target_ast, state, lineno):
        ct = value.ct or (64, True)
        meta = self.key_meta.get(key) or self._note_key(key, ct, None)
        tct, _default, checked, trusted = meta
        tct = tct or ct
        stored = value.interval
        width = iv.width_interval(*tct)
        if not iv.contains(width, stored, self.box):
            if tct[1]:
                self.oblige("overflow", lineno, False,
                            f"store to {unparse(target_ast)}: value in "
                            f"{stored!r} exceeds int{tct[0]}")
            else:
                stored = width
        if checked is not None:
            ok = iv.contains(checked, stored, self.box)
            self.oblige("bounds", lineno, ok,
                        f"store to {unparse(target_ast)}: value in "
                        f"{stored!r}, invariant [{checked.lo!r}, "
                        f"{checked.hi!r}]")
        if trusted:
            # Monotone counters: re-trust the declared bound rather
            # than tracking an ever-growing precise interval.
            state.scalars.pop(key, None)
        else:
            state.scalars[key] = stored

    def _incdec(self, target, op, state, lineno, post):
        binop = "+" if op == "++" else "-"
        one = _Value(iv.const_interval(1), (32, True))
        if isinstance(target, cparse.CIndex):
            old = self._eval_index(target, state)
            new = self._apply_op(binop, old, one, lineno,
                                 f"{unparse(target)}{op}")
            self._eval_index(target, state, store=new)
            return old if post else new
        old = self.eval(target, state)
        if old.key is None or old.ct is None:
            raise CertifyError(
                f"cannot track {unparse(target)}{op}", lineno)
        new = self._apply_op(binop, old, one, lineno,
                             f"{unparse(target)}{op}")
        self._store_key(old.key, new, target, state, lineno)
        return old if post else new

    def _eval_assign(self, expr, state):
        target = expr.target
        rhs = _strip_casts(expr.value)
        if (expr.op == "=" and isinstance(rhs, cparse.CCall)
                and rhs.name == "malloc"):
            return self._malloc(target, rhs, state, expr.lineno)
        if isinstance(target, cparse.CIndex):
            if expr.op == "=":
                value = self.eval(expr.value, state)
            else:
                old = self._eval_index(target, state)
                rval = self.eval(expr.value, state)
                value = self._apply_op(expr.op[:-1], old, rval,
                                       expr.lineno, unparse(expr))
            return self._eval_index(target, state, store=value)
        tv = self.eval(target, state)
        if tv.ct is None:
            value = self.eval(expr.value, state)
            return self._pointer_store(target, value, state,
                                       expr.lineno)
        if expr.op == "=":
            value = self.eval(expr.value, state)
        else:
            rval = self.eval(expr.value, state)
            value = self._apply_op(expr.op[:-1], tv, rval,
                                   expr.lineno, unparse(expr))
        if tv.key is None:
            raise CertifyError(
                f"cannot track store {unparse(expr)}", expr.lineno)
        self._store_key(tv.key, value, target, state, expr.lineno)
        return value

    def _pointer_store(self, target, value, state, lineno):
        if isinstance(target, cparse.CName):
            if isinstance(value.ref, (_BufSpec, _StructPtr, _ElemSpec)):
                state.ptrs[target.name] = value.ref
            else:
                state.ptrs.pop(target.name, None)
            return value
        if isinstance(target, cparse.CFieldRef):
            place = self._place(target.base, state)
            if place is None:
                raise CertifyError(
                    f"cannot resolve {unparse(target)}", lineno)
            struct = place[0]
            spec = self.env.field_buffer(struct, target.field)
            if spec is not None:
                ok = (isinstance(value.ref, _BufSpec)
                      and spec.same_as(value.ref))
                # A null store releases the binding; the contract only
                # constrains buffers that are subsequently indexed.
                if _const_fold_is_zero(value):
                    ok = True
                self.oblige("bounds", lineno, ok,
                            f"pointer field {unparse(target)} bound to "
                            f"an incompatible buffer")
                return value
            fdecl = self.env.struct_field(struct, target.field)
            fbase, fptr = _split_ctype(fdecl.ctype) if fdecl else ("", 0)
            if fptr > 0 and fbase in self.env.extract.structs:
                ok = (isinstance(value.ref, _StructPtr)
                      and value.ref.struct == fbase)
                self.oblige("bounds", lineno, ok,
                            f"pointer field {unparse(target)} bound to "
                            f"a different struct type")
                return value
        raise CertifyError(
            f"unsupported pointer store {unparse(target)}", lineno)

    # -- malloc

    def _malloc(self, target, call, state, lineno):
        size = self.eval(call.args[0], state)
        size_iv = self._form_interval(call.args[0], state,
                                      fallback=size.interval)
        spec = None
        if isinstance(target, cparse.CFieldRef):
            place = self._place(target.base, state)
            if place is not None:
                spec = self.env.field_buffer(place[0], target.field)
        if spec is None:
            self.oblige("bounds", lineno, False,
                        f"malloc into {unparse(target)}: no buffer "
                        f"contract")
            return _Value(ct=None)
        need = iv.bound_scale(spec.length, spec.elem[0] // 8)
        ok = iv.bound_le(need, size_iv.lo, self.box)
        self.oblige("bounds", lineno, ok,
                    f"malloc for {spec.name}: needs {need!r} bytes, "
                    f"allocates at least {size_iv.lo!r}")
        return _Value(ct=None, ref=spec)

    # -- calls

    def _eval_call(self, expr, state):
        name = expr.name
        if name in _MEM_FUNCS:
            return self._mem_call(expr, state)
        if name == "free":
            for arg in expr.args:
                self.eval(arg, state)
            return _Value(iv.const_interval(0), (32, True))
        if name == "malloc":
            self.eval(expr.args[0], state)
            return _Value(ct=None)
        callee = self.env.unit.functions.get(name)
        if callee is None:
            raise CertifyError(
                f"call to unknown function {name!r}", expr.lineno)
        args = [self.eval(arg, state) for arg in expr.args]
        self._check_call_contract(callee, expr, args, state)
        self._havoc_call(callee, expr, state)
        declared = self.env.returns_interval(callee)
        ct = self.env.width_of(callee.return_type)
        if declared is not None:
            return _Value(declared, ct or (64, True))
        if ct is None:
            return _Value(iv.const_interval(0), (32, True))
        return _Value(iv.width_interval(*ct), ct)

    def _check_call_contract(self, callee, expr, args, state):
        sub = {}
        pairs = list(zip(callee.params, expr.args, args))
        for (pname, _ptype, pptr), ast_arg, value in pairs:
            if pptr == 0 and value.ct is not None:
                sub[pname] = value.interval
            elif pptr >= 1:
                stripped = _strip_casts(ast_arg)
                if (isinstance(stripped, cparse.CUnary)
                        and stripped.op == "&"):
                    inner = self._pure_eval(stripped.operand, state)
                    if inner.ct is not None:
                        sub[f"*{pname}"] = inner.interval
                spec = self.env.ann_buffers.get((callee.name, pname))
                if spec is not None:
                    argspec = (value.ref
                               if isinstance(value.ref, _BufSpec)
                               else None)
                    writes = ((pname, "[]")
                              in self.summaries.get(callee.name, ()))
                    ok = (argspec is not None
                          and iv.bound_le(spec.length, argspec.length,
                                          self.box)
                          and iv.contains(spec.content,
                                          argspec.content, self.box)
                          and (not writes
                               or iv.contains(argspec.content,
                                              spec.content, self.box)))
                    self.oblige(
                        "bounds", expr.lineno, ok,
                        f"call to {callee.name}: argument "
                        f"{unparse(ast_arg)} does not satisfy the "
                        f"declared buffer contract for {pname}")
        for ann in callee.requires:
            cond = self.env.parse_annotation(ann)
            if cond is None:
                continue
            ok = self._prove_with(cond, sub)
            self.oblige("bounds", expr.lineno, ok,
                        f"call to {callee.name}: cannot prove "
                        f"requires {ann.text!r}")

    def _mini_iv(self, expr, sub):
        expr_s = _strip_casts(expr)
        if isinstance(expr_s, cparse.CNum):
            return iv.const_interval(expr_s.value)
        if isinstance(expr_s, cparse.CName):
            name = expr_s.name
            if name in sub:
                return sub[name]
            if name in self.env.defines:
                return iv.const_interval(self.env.defines[name])
            if name in self.box:
                return iv.symbol_interval(name)
            return None
        if isinstance(expr_s, cparse.CUnary):
            if (expr_s.op == "*"
                    and isinstance(expr_s.operand, cparse.CName)):
                return sub.get(f"*{expr_s.operand.name}")
            if expr_s.op == "-":
                inner = self._mini_iv(expr_s.operand, sub)
                return None if inner is None else iv.neg(inner)
            return None
        if isinstance(expr_s, cparse.CBinary):
            left = self._mini_iv(expr_s.left, sub)
            right = self._mini_iv(expr_s.right, sub)
            if left is None or right is None:
                return None
            if expr_s.op == "+":
                return iv.add(left, right)
            if expr_s.op == "-":
                return iv.sub(left, right)
            if expr_s.op == "*":
                return iv.mul(left, right, self.box)
            if expr_s.op == "<<":
                return iv.shl(left, right, self.box)
            return None
        return None

    def _prove_with(self, cond, sub):
        if isinstance(cond, cparse.CBinary):
            if cond.op == "&&":
                return (self._prove_with(cond.left, sub)
                        and self._prove_with(cond.right, sub))
            if cond.op == "||":
                return (self._prove_with(cond.left, sub)
                        or self._prove_with(cond.right, sub))
            if cond.op in _CMP_OPS:
                left = self._mini_iv(cond.left, sub)
                right = self._mini_iv(cond.right, sub)
                if left is None or right is None:
                    return False
                return _prove_cmp(cond.op, left, right, self.box)
        return False

    def _havoc_call(self, callee, expr, state):
        templates = self.summaries.get(callee.name, ())
        pmap = dict(zip((p for p, _, _ in callee.params), expr.args))
        for root, suffix in templates:
            if suffix == "[]":
                continue
            arg = pmap.get(root)
            if arg is None:
                continue
            for key in _havoc_keys(arg, suffix):
                state.scalars.pop(key, None)

    # -- memory intrinsics

    def _mem_call(self, expr, state):
        name = expr.name
        lineno = expr.lineno
        dst = _strip_casts(expr.args[0])
        if name == "memset":
            target = self._struct_target(dst, state)
            if target is not None:
                fill = _const_fold(expr.args[1], self.env)
                if fill == 0:
                    self._zero_struct(target, state)
                    return _Value(ct=None)
        base, offset = _split_ptr_arith(dst)
        bv = self.eval(base, state)
        spec = bv.ref if isinstance(bv.ref, _BufSpec) else None
        if spec is None:
            self.oblige("bounds", lineno, False,
                        f"{name}: destination {unparse(dst)} has no "
                        f"buffer contract")
            return _Value(ct=None)
        self._check_mem_extent(name, spec, offset, expr.args[-1],
                               state, lineno)
        if name == "memset":
            fill = _const_fold(expr.args[1], self.env)
            if fill == 0:
                content = iv.const_interval(0)
            elif fill in (0xFF, -1):
                content = (iv.const_interval(-1) if spec.elem[1]
                           else iv.width_interval(*spec.elem))
            else:
                content = iv.width_interval(*spec.elem)
            ok = iv.contains(spec.content, content, self.box)
            self.oblige("bounds", lineno, ok,
                        f"memset fills {spec.name} with values in "
                        f"{content!r}, contract {spec.content!r}")
        else:
            src_base, src_off = _split_ptr_arith(
                _strip_casts(expr.args[1]))
            sv = self.eval(src_base, state)
            sspec = sv.ref if isinstance(sv.ref, _BufSpec) else None
            if sspec is None:
                self.oblige("bounds", lineno, False,
                            f"{name}: source has no buffer contract")
            else:
                self._check_mem_extent(name, sspec, src_off,
                                       expr.args[-1], state, lineno)
                ok = iv.contains(spec.content, sspec.content, self.box)
                self.oblige("bounds", lineno, ok,
                            f"{name} into {spec.name}: source values "
                            f"{sspec.content!r} outside contract "
                            f"{spec.content!r}")
        return _Value(ct=None)

    def _check_mem_extent(self, name, spec, offset, size_arg, state,
                          lineno):
        eb = spec.elem[0] // 8
        size_iv = self._form_interval(size_arg, state, fallback=None)
        if size_iv is None:
            size_iv = self.eval(size_arg, state).interval
        total_hi = size_iv.hi
        total_lo = size_iv.lo
        if offset is not None:
            off_iv = self._form_interval(offset, state, fallback=None)
            if off_iv is None:
                off_iv = self.eval(offset, state).interval
            ok_off = iv.bound_le(iv.const_bound(0), off_iv.lo, self.box)
            self.oblige("bounds", lineno, ok_off,
                        f"{name} on {spec.name}: offset may be "
                        f"negative ({off_iv!r})")
            total_hi = iv.bound_add(
                total_hi, iv.bound_scale(off_iv.hi, eb))
        cap = iv.bound_scale(spec.length, eb)
        ok = iv.bound_le(total_hi, cap, self.box)
        self.oblige("bounds", lineno, ok,
                    f"{name} on {spec.name}: writes up to "
                    f"{total_hi!r} bytes, buffer holds {cap!r}")
        ok_lo = iv.bound_le(iv.const_bound(0), total_lo, self.box)
        self.oblige("bounds", lineno, ok_lo,
                    f"{name} on {spec.name}: size may be negative")

    def _struct_target(self, dst, state):
        """``(struct, key_prefix, sep)`` for a struct memset target."""
        if isinstance(dst, cparse.CUnary) and dst.op == "&":
            inner = dst.operand
            if isinstance(inner, cparse.CIndex):
                bv = self.eval(inner.base, state)
                if isinstance(bv.ref, _ElemSpec):
                    self._eval_index(inner, state)
                    return (bv.ref.struct, None, ".")
            place = self._place(inner, state)
            if place is not None:
                return (place[0], place[1], ".")
            return None
        place = self._place(dst, state)
        if place is None:
            return None
        # A bare pointer name: later accesses spell ``p->field``.
        return (place[0], place[1], "->")

    def _zero_struct(self, target, state):
        struct, prefix, sep = target
        sdef = self.env.extract.structs.get(struct)
        if sdef is None:
            return
        for field in sdef.fields:
            base, ptr = _split_ctype(field.ctype)
            if ptr > 0 or field.array_len is not None:
                continue
            if base in self.env.extract.structs:
                sub = (f"{prefix}{sep}{field.name}"
                       if prefix is not None else None)
                self._zero_struct((base, sub, "."), state)
                continue
            ct = self.env.width_of(field.ctype)
            if ct is None or prefix is None:
                continue
            key = f"{prefix}{sep}{field.name}"
            inv = self.env.field_invariant(struct, field.name)
            self._note_key(key, ct, inv)
            state.scalars[key] = iv.const_interval(0)

    # -- declarations

    def _transfer_decl(self, stmt, state):
        for decl in stmt.decls:
            base = stmt.base_type
            if decl.array_len is not None:
                length = self.env.affine_fold(decl.array_len)
                elem = self.env.width_of(base) or (64, True)
                if length is not None:
                    self.local_bufs[decl.name] = _BufSpec(
                        decl.name, length,
                        iv.width_interval(*elem), elem)
                continue
            if decl.init is None:
                continue
            init = _strip_casts(decl.init)
            if decl.ptr > 0 or base in self.env.extract.structs:
                if (isinstance(init, cparse.CCall)
                        and init.name == "malloc"):
                    self.eval(init.args[0], state)
                    continue
                value = self.eval(decl.init, state)
                if isinstance(value.ref,
                              (_BufSpec, _StructPtr, _ElemSpec)):
                    state.ptrs[decl.name] = value.ref
                continue
            value = self.eval(decl.init, state)
            ct = self.env.width_of(base) or (64, True)
            self._note_key(decl.name, ct, None)
            self._store_key(decl.name, value,
                            cparse.CName(decl.name, stmt.lineno),
                            state, stmt.lineno)


def _const_fold_is_zero(value):
    ivl = value.interval
    return (not isinstance(ivl.lo, iv.Inf) and iv.equal(
        ivl, iv.const_interval(0)))


class _FnFlow:
    """Mixin: condition refinement, statement transfer, fixpoint."""

    # -- refinement

    def refine_into(self, state, cond, sense):
        """Refine *state* assuming ``cond`` is truthy (*sense* True) or
        falsy.  Returns False when the branch is proven unreachable."""
        cond = _strip_casts(cond)
        if isinstance(cond, cparse.CNum):
            return bool(cond.value) == sense
        if isinstance(cond, cparse.CUnary) and cond.op == "!":
            return self.refine_into(state, cond.operand, not sense)
        if isinstance(cond, cparse.CBinary):
            if cond.op in ("&&", "||"):
                conj = (cond.op == "&&") == sense
                if conj:
                    # Both operands hold (in this sense).
                    left_sense = sense
                    if not self.refine_into(state, cond.left, left_sense):
                        return False
                    return self.refine_into(state, cond.right, left_sense)
                # Disjunction: at least one operand holds.  If refining
                # by one side alone is unsatisfiable, the other side
                # must hold — refine by it.
                sides = []
                for side in (cond.left, cond.right):
                    trial = state.clone()
                    if self.refine_into(trial, side, sense):
                        sides.append(trial)
                if not sides:
                    return False
                if len(sides) == 1:
                    _adopt(state, sides[0])
                return True
            if cond.op in _CMP_OPS:
                op = cond.op if sense else _NEG_OP[cond.op]
                return self._refine_cmp(state, op, cond.left,
                                        cond.right)
        # Bare truthiness: expr != 0 / expr == 0.
        op = "!=" if sense else "=="
        return self._refine_cmp(state, op, cond,
                                cparse.CNum(0, False,
                                            getattr(cond, "lineno", 0)))

    def _refine_cmp(self, state, op, left, right):
        lform = self._form(left, state)
        rform = self._form(right, state)
        if lform is None or rform is None:
            return True
        diff = _form_add(lform, _form_scale(rform, -1))
        total = self._form_total(diff, state)
        if _cmp_impossible(op, total, self.box):
            return False
        coeffs, rest = diff
        for key, coeff in coeffs.items():
            if coeff not in (1, -1):
                continue
            others_coeffs = {k: c for k, c in coeffs.items()
                            if k != key}
            others = self._form_total((others_coeffs, rest), state)
            if coeff == 1:
                bound = iv.Interval(iv.bound_neg(others.hi),
                                    iv.bound_neg(others.lo))
                kop = op
            else:
                bound = others
                kop = _FLIP_OP[op]
            cur = self.get_iv(state, key)
            new = _cmp_refine(cur, kop, bound, self.box)
            if new.is_bottom:
                return False
            if not iv.equal(new, cur):
                state.scalars[key] = new
        return True

    # -- statement transfer

    def _transfer(self, node, state):
        stmt = node.payload
        if isinstance(stmt, cparse.CExprStmt):
            self.eval(stmt.expr, state)
        elif isinstance(stmt, cparse.CDeclStmt):
            self._transfer_decl(stmt, state)
        elif isinstance(stmt, cparse.CReturn):
            if stmt.value is not None:
                value = self.eval(stmt.value, state)
                declared = self.env.returns_interval(self.fn)
                if declared is not None:
                    vi = self._form_interval(stmt.value, state,
                                             fallback=value.interval)
                    ok = iv.contains(declared, vi, self.box)
                    self.oblige(
                        "bounds", stmt.lineno, ok,
                        f"return value in {vi!r} outside declared "
                        f"returns {declared!r}")

    def _flow(self, cfg, nid, state_in):
        node = cfg.nodes[nid]
        state = state_in.clone()
        for ann in node.assumes:
            cond = self.env.parse_annotation(ann)
            if cond is not None:
                if not self.refine_into(state, cond, True):
                    return []
        if node.kind == "stmt":
            self._transfer(node, state)
        elif node.kind == "branch" and node.payload is not None:
            self.eval(node.payload, state)
        out = []
        for succ, cond, sense, back in node.succs:
            if cond is None:
                out.append((succ, state.clone()
                            if len(node.succs) > 1 else state, back))
            else:
                branch = state.clone()
                if self.refine_into(branch, cond, sense):
                    out.append((succ, branch, back))
        return out

    # -- widening thresholds

    def _threshold_bound(self, expr):
        """An affine bound for one side of a comparison, or None."""
        bound = self.env.affine_fold(expr)
        if bound is not None:
            return bound
        if isinstance(expr, cparse.CFieldRef):
            # A pinned struct field (lo == hi in its invariant) names
            # the symbol it is pinned to -- e.g. ``c->rob_alloc``.
            for (_owner, field), (inv, _tr) in self.env.fields.items():
                if (field == expr.field
                        and isinstance(inv.lo, iv.Affine)
                        and inv.lo.same_as(inv.hi)):
                    return inv.lo
        return None

    def _harvest_thresholds(self):
        """Candidate widening thresholds for this function: affine
        bounds appearing in its comparisons and assume/requires
        conditions (each with its +/-1 neighbours).  Adoption is
        speculative -- a threshold survives only if the continued
        fixpoint iteration proves it stable -- so over-collection is
        harmless; thresholds are tried in ascending numeric order."""
        seen = {}

        def note(bound):
            if bound is None:
                return
            for cand in (bound.shift(-1), bound, bound.shift(1)):
                num = iv.bound_num_max(cand, self.box)
                if num is not None:
                    seen.setdefault(repr(cand), (num, cand))

        def walk(expr):
            if isinstance(expr, cparse.CBinary):
                if expr.op in ("==", "!=", "<", "<=", ">", ">="):
                    note(self._threshold_bound(expr.left))
                    note(self._threshold_bound(expr.right))
                walk(expr.left)
                walk(expr.right)
            elif isinstance(expr, (cparse.CUnary, cparse.CPostfix)):
                walk(expr.operand)
            elif isinstance(expr, cparse.CAssign):
                walk(expr.target)
                walk(expr.value)
            elif isinstance(expr, cparse.CCond):
                walk(expr.cond)
                walk(expr.then)
                walk(expr.other)
            elif isinstance(expr, cparse.CCall):
                for arg in expr.args:
                    walk(arg)
            elif isinstance(expr, cparse.CIndex):
                walk(expr.base)
                walk(expr.index)
            elif isinstance(expr, cparse.CFieldRef):
                walk(expr.base)
            elif isinstance(expr, cparse.CCast):
                walk(expr.operand)

        def walk_ann(ann):
            cond = self.env.parse_annotation(ann)
            if cond is not None:
                walk(cond)

        for ann in self.fn.requires:
            walk_ann(ann)
        for stmt in cparse._walk_statements(self.fn.body):
            for ann in stmt.assumes:
                walk_ann(ann)
            if isinstance(stmt, cparse.CExprStmt):
                walk(stmt.expr)
            elif isinstance(stmt, cparse.CDeclStmt):
                for decl in stmt.decls:
                    if decl.init is not None:
                        walk(decl.init)
            elif isinstance(stmt, (cparse.CIf, cparse.CWhile)):
                walk(stmt.cond)
            elif isinstance(stmt, cparse.CFor):
                if isinstance(stmt.init, cparse.CNode) and not isinstance(
                        stmt.init, cparse.CStmt):
                    walk(stmt.init)
                walk(stmt.cond)
                walk(stmt.step)
            elif isinstance(stmt, cparse.CReturn):
                if stmt.value is not None:
                    walk(stmt.value)
        return [bound for _num, bound in
                sorted(seen.values(), key=lambda item: item[0])]

    def _next_threshold(self, mark, lo, hi):
        """The next untried threshold usable as an upper bound for
        this (node, key) endpoint, or +inf once all are exhausted.
        Candidates provably below the current value (or below the
        lower bound) cannot be invariant and are skipped."""
        idx = self._thr_idx.get(mark, 0)
        thresholds = self._thresholds
        while idx < len(thresholds):
            cand = thresholds[idx]
            idx += 1
            if (cand.is_const
                    and iv.bound_le(cand, hi, self.box)
                    and not iv.bound_le(hi, cand, self.box)):
                # A constant strictly below the climbing value can
                # never bound it.  Symbolic candidates are NOT skipped:
                # the climb may itself be the numeric shadow of the
                # symbolic invariant, which only re-proves once adopted.
                continue
            if not iv.bound_le(lo, cand, self.box):
                continue
            self._thr_idx[mark] = idx
            self._adoptions.append((mark[1], cand))
            return cand
        self._thr_idx[mark] = idx
        return iv.POS_INF

    # -- the fixpoint

    def run(self):
        cfg, entry, exit_id = _lower_function(self.fn)
        self.cfg = cfg
        states = {entry: self.entry_state()}
        self._moves = {}
        self._thresholds = self._harvest_thresholds()
        self._thr_idx = {}
        self._adoptions = []
        keep = {entry} | {i for i, node in enumerate(cfg.nodes)
                          if node.loop_head}
        work = deque([entry])
        queued = {entry}
        pops = 0
        while work:
            pops += 1
            if pops > _MAX_VISITS:
                raise CertifyError(
                    f"fixpoint did not converge in {self.fn.name}",
                    self.fn.lineno)
            nid = work.popleft()
            queued.discard(nid)
            state_in = states.get(nid)
            if state_in is None:
                continue
            for succ, out, back in self._flow(cfg, nid, state_in):
                old = states.get(succ)
                if old is None:
                    states[succ] = out
                elif back and cfg.nodes[succ].loop_head:
                    # Widen only against values carried by the loop's
                    # own back edge: entry-side values still converging
                    # (an outer loop's state) must not trip the delay
                    # counter for loop-invariant keys.
                    joined = self._widen_states(
                        succ, old, self._join_states(old, out))
                    if self._states_eq(old, joined):
                        continue
                    states[succ] = joined
                else:
                    joined = self._join_states(old, out)
                    if self._states_eq(old, joined):
                        continue
                    states[succ] = joined
                if succ not in queued:
                    queued.add(succ)
                    work.append(succ)
            if self._adoptions:
                # A widening just jumped to a harvested threshold.  The
                # accumulated states elsewhere still hold the numeric
                # iterates from before the jump; joining those with the
                # new symbolic bound collapses it to a numeric corner
                # and the comparison trims that would prove the
                # threshold invariant can never fire.  Non-head states
                # are derived data: drop them and re-propagate.  Other
                # loop heads may hold the same stale corners for keys
                # they never widen themselves (their back edges would
                # re-deliver the poison forever), so the adopted bound
                # is speculatively installed there too -- every change
                # is re-verified by the continued iteration, which only
                # quiesces on a true post-fixpoint.
                for key, cand in self._adoptions:
                    for hid in keep:
                        st = states.get(hid)
                        if st is None or hid == entry:
                            continue
                        cur = st.scalars.get(key)
                        if (cur is not None
                                and not iv.bound_le(cur.hi, cand,
                                                    self.box)
                                and iv.bound_le(cur.lo, cand,
                                                self.box)):
                            st.scalars[key] = iv.Interval(cur.lo, cand)
                self._adoptions = []
                for i in list(states):
                    if i not in keep:
                        del states[i]
                work.clear()
                queued.clear()
                for i in sorted(keep & set(states)):
                    work.append(i)
                    queued.add(i)
        # Narrowing: a decreasing worklist pass recomputing each IN
        # from the current predecessors and meeting it into the stored
        # state.  A per-node round budget bounds the descending chain
        # (meets could otherwise count down numeric endpoints one by
        # one), so the pass terminates without a widening.
        narrow_rounds = {}
        preds = {}
        for nid, node in enumerate(cfg.nodes):
            for succ, _cond, _sense, _back in node.succs:
                preds.setdefault(succ, []).append(nid)
        order = sorted(states)
        work = deque(order)
        queued = set(order)
        pops = 0
        while work and pops < _MAX_VISITS:
            pops += 1
            nid = work.popleft()
            queued.discard(nid)
            if nid == entry:
                continue
            incoming = None
            for pred in preds.get(nid, ()):
                pin = states.get(pred)
                if pin is None:
                    continue
                for succ, out, _back in self._flow(cfg, pred, pin):
                    if succ != nid:
                        continue
                    incoming = (out if incoming is None
                                else self._join_states(incoming, out))
            cur = states.get(nid)
            if incoming is None or cur is None:
                continue
            if narrow_rounds.get(nid, 0) >= _NARROW_ROUNDS:
                continue
            new = self._narrow_states(cur, incoming)
            if not self._states_eq(cur, new):
                narrow_rounds[nid] = narrow_rounds.get(nid, 0) + 1
                states[nid] = new
                for succ, _cond, _sense, _back in cfg.nodes[nid].succs:
                    if succ in states and succ not in queued:
                        queued.add(succ)
                        work.append(succ)
        # Checking pass: replay every reachable statement once.
        self.checking = True
        for nid in order:
            state_in = states.get(nid)
            if state_in is not None:
                self._flow(cfg, nid, state_in)
        self.checking = False

    # -- state lattice

    def _join_states(self, a, b):
        scalars = {}
        for key in set(a.scalars) | set(b.scalars):
            joined = iv.join(self.get_iv(a, key), self.get_iv(b, key),
                             self.box)
            default = self.default_iv(key)
            if default is not None and iv.equal(joined, default):
                continue
            scalars[key] = joined
        ptrs = {}
        for name, ref in a.ptrs.items():
            other = b.ptrs.get(name)
            if other is not None and _ref_eq(ref, other):
                ptrs[name] = ref
        return _State(scalars, ptrs, True)

    def _widen_states(self, nid, old, new):
        """Delayed widening, per key and endpoint: an endpoint may move
        :data:`_WIDEN_DELAY` times at one loop head before it jumps --
        to 0 then -inf for lower bounds, and through the harvested
        comparison thresholds then +inf for upper bounds."""
        scalars = {}
        for key, nv in new.scalars.items():
            ov = old.scalars.get(key)
            if ov is None or ov.is_bottom or nv.is_bottom:
                scalars[key] = nv
                continue
            lo, hi = nv.lo, nv.hi
            if not (iv.bound_le(ov.lo, nv.lo, self.box)
                    and iv.bound_le(nv.lo, ov.lo, self.box)):
                mark = (nid, key, "lo")
                self._moves[mark] = self._moves.get(mark, 0) + 1
                if self._moves[mark] > _WIDEN_DELAY:
                    zero = iv.Affine(0)
                    lo = (zero if iv.bound_le(zero, nv.lo, self.box)
                          else iv.NEG_INF)
            if not (iv.bound_le(nv.hi, ov.hi, self.box)
                    and iv.bound_le(ov.hi, nv.hi, self.box)):
                mark = (nid, key, "hi")
                self._moves[mark] = self._moves.get(mark, 0) + 1
                if self._moves[mark] > _WIDEN_DELAY:
                    # Widening with thresholds: jump to the next
                    # harvested comparison bound before giving up and
                    # going to +inf.  A speculative jump below the
                    # true invariant is re-detected as instability on
                    # the next arrival and the following threshold is
                    # tried, so soundness is preserved.
                    hi = self._next_threshold(mark, lo, nv.hi)
            scalars[key] = iv.Interval(lo, hi)
        return _State(scalars, dict(new.ptrs), True)

    def _narrow_states(self, old, new):
        scalars = {}
        for key, ov in old.scalars.items():
            nv = self.get_iv(new, key)
            met = iv.meet(ov, nv, self.box)
            # The recomputed incoming is itself a sound
            # over-approximation, so meeting with it tightens stale
            # endpoints (numeric corners from early iterates) that the
            # infinite-endpoint-only narrow would keep.  Fall back to
            # the incoming value if the meet degenerates.
            scalars[key] = nv if met.is_bottom else met
        return _State(scalars, dict(old.ptrs), True)

    def _states_eq(self, a, b):
        if set(a.scalars) != set(b.scalars):
            return False
        if any(not iv.equal(a.scalars[k], b.scalars[k])
               for k in a.scalars):
            return False
        if set(a.ptrs) != set(b.ptrs):
            return False
        return all(_ref_eq(a.ptrs[k], b.ptrs[k]) for k in a.ptrs)


def _ref_eq(a, b):
    if type(a) is not type(b):
        return False
    if isinstance(a, _BufSpec):
        return a.same_as(b)
    if isinstance(a, _StructPtr):
        return a.struct == b.struct
    if isinstance(a, _ElemSpec):
        return a.struct == b.struct and a.length.same_as(b.length)
    return False


def _adopt(state, other):
    state.scalars = other.scalars
    state.ptrs = other.ptrs


class _Fn(_FnCore, _FnEval, _FnStores, _FnFlow):
    """The per-function abstract interpreter (composed mixins)."""


# --------------------------------------------------------------- driver

def analyse_kernel(source, contract, extract=None):
    """Run the certifier over one kernel source.

    *extract* is an optional pre-parsed declaration extraction (the
    project-level cache shares it with the parity passes).  Returns a
    :class:`KernelReport`; never raises — analysis failures become
    ``report.error`` / ``report.issues``.
    """
    report = KernelReport(contract.path)
    try:
        env = _Env(source, contract, extract)
    except (cparse.CParseError, CertifyError) as exc:
        report.error = (getattr(exc, "lineno", 0), str(exc))
        return report
    report.unit = env.unit
    # Annotation hygiene: every trust declaration documents a reason.
    for ann in env.unit.annotations:
        if ann.kind == "assume" and not ann.reason:
            report.issues.append(
                (ann.lineno,
                 "certify assume without a '-- reason' justification"))
    for sup in env.unit.suppressions.values():
        if not sup.reason:
            report.issues.append(
                (sup.lineno,
                 "C suppression without a '-- reason' justification"))
    if contract.entry not in env.unit.functions:
        report.error = (0, f"entry function {contract.entry!r} not "
                           f"found in {contract.path}")
        return report
    summaries = _summaries(env.unit)
    sink = {}
    for fn in env.unit.functions.values():
        try:
            engine = _Fn(env, fn, summaries, sink)
            engine.run()
        except CertifyError as exc:
            report.issues.append((exc.lineno, str(exc)))
    report.issues.extend(env.ann_errors)
    for (kind, lineno, message), ok in sorted(
            sink.items(), key=lambda kv: (kv[0][1], kv[0][0],
                                          kv[0][2])):
        report.checked += 1
        if ok:
            report.proved += 1
        else:
            report.obligations.append(
                Obligation(kind, lineno, message, False))
    return report
