"""The certifier's value domain: intervals with affine endpoints.

A plain numeric interval cannot prove ``t->res_data[t->prod1[i]]`` in
bounds — the buffer length is ``n + 1`` where ``n`` is only known
symbolically.  The endpoints here are therefore *affine expressions*
``c0 + c1*s1 + c2*s2 + ...`` over the kernel's declared symbols, each
symbol carrying a numeric range (its *box*).  Ordering queries reduce
to evaluating the affine difference at the box extremes — exact for
linear forms, since each symbol contributes independently.

The lattice is the classic interval domain:

* ``join`` keeps an endpoint when it provably dominates the other,
  falling back to the numeric box extreme when the two affine forms
  are incomparable;
* ``widen`` jumps an unstable endpoint to the type extreme (with ``0``
  as a threshold for lower bounds, since almost every index is
  provably non-negative);
* ``meet`` implements condition refinement.

Unsigned arithmetic wraps legally in C, so unsigned results that leave
their width simply saturate to the full unsigned range; *signed*
results that leave their width are the ``kernel-overflow`` pass's
findings and are reported by the interpreter, not here.
"""


class Inf:
    """A signed infinity endpoint (two singletons below)."""

    __slots__ = ("sign",)

    def __init__(self, sign):
        self.sign = sign

    def __repr__(self):
        return "+inf" if self.sign > 0 else "-inf"


POS_INF = Inf(1)
NEG_INF = Inf(-1)


class Affine:
    """``const + sum(coeff * symbol)`` with integer coefficients."""

    __slots__ = ("terms", "const")

    def __init__(self, const=0, terms=None):
        self.const = const
        self.terms = {s: c for s, c in (terms or {}).items() if c != 0}

    @property
    def is_const(self):
        return not self.terms

    def add(self, other):
        """Termwise sum with another affine form."""
        terms = dict(self.terms)
        for sym, coeff in other.terms.items():
            terms[sym] = terms.get(sym, 0) + coeff
        return Affine(self.const + other.const, terms)

    def sub(self, other):
        """Termwise difference ``self - other``."""
        return self.add(other.scale(-1))

    def scale(self, k):
        """Multiply every coefficient and the constant by *k*."""
        return Affine(self.const * k,
                      {s: c * k for s, c in self.terms.items()})

    def shift(self, k):
        """Add the integer constant *k*."""
        return Affine(self.const + k, dict(self.terms))

    def eval_min(self, box):
        """Smallest value over the box of per-symbol ranges."""
        total = self.const
        for sym, coeff in self.terms.items():
            lo, hi = box[sym]
            total += coeff * (lo if coeff > 0 else hi)
        return total

    def eval_max(self, box):
        """Largest value over the box of per-symbol ranges."""
        total = self.const
        for sym, coeff in self.terms.items():
            lo, hi = box[sym]
            total += coeff * (hi if coeff > 0 else lo)
        return total

    def same_as(self, other):
        """Exact structural equality with another affine form."""
        return (isinstance(other, Affine)
                and self.const == other.const
                and self.terms == other.terms)

    def __repr__(self):
        parts = []
        for sym in sorted(self.terms):
            coeff = self.terms[sym]
            if coeff == 1:
                parts.append(sym)
            elif coeff == -1:
                parts.append(f"-{sym}")
            else:
                parts.append(f"{coeff}*{sym}")
        if self.const or not parts:
            parts.append(str(self.const))
        text = " + ".join(parts).replace("+ -", "- ")
        return text


def const_bound(value):
    """The constant *value* as an affine endpoint."""
    return Affine(value)


def bound_le(a, b, box):
    """Is ``a <= b`` for every symbol assignment in the box?"""
    if isinstance(a, Inf):
        return a.sign < 0 or (isinstance(b, Inf) and b.sign > 0)
    if isinstance(b, Inf):
        return b.sign > 0
    return b.sub(a).eval_min(box) >= 0


def bound_add(a, b):
    """Endpoint sum; an infinite operand absorbs."""
    if isinstance(a, Inf):
        return a
    if isinstance(b, Inf):
        return b
    return a.add(b)


def bound_neg(a):
    """Endpoint negation (flips infinities)."""
    if isinstance(a, Inf):
        return NEG_INF if a.sign > 0 else POS_INF
    return a.scale(-1)


def bound_scale(a, k):
    """Endpoint times the integer constant *k* (sign-aware for inf)."""
    if k == 0:
        return Affine(0)
    if isinstance(a, Inf):
        return a if k > 0 else bound_neg(a)
    return a.scale(k)


def bound_num_min(a, box):
    """Numeric floor of a bound over the box (None for ``-inf``)."""
    if isinstance(a, Inf):
        return None
    return a.eval_min(box)


def bound_num_max(a, box):
    """Numeric ceiling of a bound over the box (None for ``+inf``)."""
    if isinstance(a, Inf):
        return None
    return a.eval_max(box)


class Interval:
    """``[lo, hi]`` with affine (or infinite) endpoints.

    ``BOTTOM`` (the singleton below) marks unreachable values; every
    other instance is assumed non-empty — emptiness that holds only
    for *some* symbol assignments is kept as-is (a sound
    over-approximation).
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        self.lo = lo
        self.hi = hi

    @property
    def is_bottom(self):
        return self is BOTTOM

    def __repr__(self):
        if self.is_bottom:
            return "[bottom]"
        return f"[{self.lo!r}, {self.hi!r}]"


BOTTOM = Interval(POS_INF, NEG_INF)
TOP = Interval(NEG_INF, POS_INF)


def const_interval(value):
    """The singleton interval ``[value, value]``."""
    bound = Affine(value)
    return Interval(bound, bound)


def symbol_interval(sym):
    """The singleton interval ``[sym, sym]`` for a contract symbol."""
    bound = Affine(0, {sym: 1})
    return Interval(bound, bound)


def width_interval(bits, signed):
    """The representable range of a *bits*-wide C integer type."""
    if signed:
        return Interval(Affine(-(1 << (bits - 1))),
                        Affine((1 << (bits - 1)) - 1))
    return Interval(Affine(0), Affine((1 << bits) - 1))


def _pick_lo(a, b, box):
    """A lower bound dominated by both *a* and *b*."""
    if bound_le(a, b, box):
        return a
    if bound_le(b, a, box):
        return b
    mins = [bound_num_min(a, box), bound_num_min(b, box)]
    if None in mins:
        return NEG_INF
    return Affine(min(mins))


def _pick_hi(a, b, box):
    if bound_le(b, a, box):
        return a
    if bound_le(a, b, box):
        return b
    maxes = [bound_num_max(a, box), bound_num_max(b, box)]
    if None in maxes:
        return POS_INF
    return Affine(max(maxes))


def join(a, b, box):
    """Least interval covering both *a* and *b* (lattice join)."""
    if a.is_bottom:
        return b
    if b.is_bottom:
        return a
    return Interval(_pick_lo(a.lo, b.lo, box), _pick_hi(a.hi, b.hi, box))


def widen(old, new, box):
    """Jump unstable endpoints to infinity, with ``0`` as a threshold
    for lower bounds (indexes are almost always provably >= 0)."""
    if old.is_bottom:
        return new
    if new.is_bottom:
        return old
    lo = old.lo
    if not bound_le(old.lo, new.lo, box):
        zero = Affine(0)
        lo = zero if bound_le(zero, new.lo, box) else NEG_INF
    hi = old.hi
    if not bound_le(new.hi, old.hi, box):
        hi = POS_INF
    return Interval(lo, hi)


def narrow(old, new, box):
    """Take the refined endpoint where the widened one was infinite."""
    if old.is_bottom or new.is_bottom:
        return new
    lo = new.lo if isinstance(old.lo, Inf) else old.lo
    hi = new.hi if isinstance(old.hi, Inf) else old.hi
    return Interval(lo, hi)


def _prefer_symbolic(x, y):
    """Between two incomparable finite bounds keep the symbolic one —
    buffer lengths are symbolic, and a numeric cap that cannot be
    ordered against them almost never proves a subscript."""
    if isinstance(x, Inf):
        return y
    if isinstance(y, Inf):
        return x
    if x.is_const and not y.is_const:
        return y
    return x


def meet(a, b, box):
    """Intersect; collapses to BOTTOM only when *provably* empty for
    every symbol assignment."""
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    if bound_le(b.lo, a.lo, box):
        lo = a.lo
    elif bound_le(a.lo, b.lo, box):
        lo = b.lo
    else:
        lo = _prefer_symbolic(a.lo, b.lo)
    if bound_le(a.hi, b.hi, box):
        hi = a.hi
    elif bound_le(b.hi, a.hi, box):
        hi = b.hi
    else:
        hi = _prefer_symbolic(a.hi, b.hi)
    if (not isinstance(lo, Inf) and not isinstance(hi, Inf)
            and hi.sub(lo).eval_max(box) < 0):
        return BOTTOM
    return Interval(lo, hi)


def equal(a, b):
    """Structural equality of endpoints (fixpoint-detection test)."""
    def same(x, y):
        if isinstance(x, Inf) or isinstance(y, Inf):
            return x is y
        return x.same_as(y)
    if a.is_bottom or b.is_bottom:
        return a is b
    return same(a.lo, b.lo) and same(a.hi, b.hi)


# ------------------------------------------------- interval arithmetic

def add(a, b):
    """Interval sum (endpoint-wise, inf-absorbing)."""
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    return Interval(bound_add(a.lo, b.lo), bound_add(a.hi, b.hi))


def sub(a, b):
    """Interval difference ``a - b``."""
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    return Interval(bound_add(a.lo, bound_neg(b.hi)),
                    bound_add(a.hi, bound_neg(b.lo)))


def neg(a):
    """Interval negation (endpoints swap and flip sign)."""
    if a.is_bottom:
        return BOTTOM
    return Interval(bound_neg(a.hi), bound_neg(a.lo))


def _const_of(iv, box):
    """The exact integer an interval denotes, if a single constant."""
    if iv.is_bottom or isinstance(iv.lo, Inf) or isinstance(iv.hi, Inf):
        return None
    if iv.lo.is_const and iv.hi.is_const and iv.lo.const == iv.hi.const:
        return iv.lo.const
    return None


def _numeric(iv, box):
    """``(lo, hi)`` numeric envelope; ``None`` ends mean unbounded."""
    return (bound_num_min(iv.lo, box), bound_num_max(iv.hi, box))


def mul(a, b, box):
    """Interval product; exact for a constant factor (keeps affine
    endpoints), numeric four-corner envelope otherwise."""
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    for x, y in ((a, b), (b, a)):
        k = _const_of(x, box)
        if k is not None:
            if k >= 0:
                return Interval(bound_scale(y.lo, k), bound_scale(y.hi, k))
            return Interval(bound_scale(y.hi, k), bound_scale(y.lo, k))
    alo, ahi = _numeric(a, box)
    blo, bhi = _numeric(b, box)
    if None in (alo, ahi, blo, bhi):
        return TOP
    products = [alo * blo, alo * bhi, ahi * blo, ahi * bhi]
    return Interval(Affine(min(products)), Affine(max(products)))


def div(a, b, box):
    """C integer division (truncation toward zero), conservatively."""
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    k = _const_of(b, box)
    if k is None or k == 0:
        return TOP
    alo, ahi = _numeric(a, box)
    if None in (alo, ahi):
        return TOP
    candidates = [_trunc_div(alo, k), _trunc_div(ahi, k)]
    return Interval(Affine(min(candidates)), Affine(max(candidates)))


def _trunc_div(x, k):
    q = abs(x) // abs(k)
    return q if (x >= 0) == (k > 0) else -q


def mod(a, b, box):
    """C ``%`` by a positive constant: ``[0, k-1]`` for a non-negative
    dividend, symmetric about zero otherwise."""
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    k = _const_of(b, box)
    if k is None or k <= 0:
        return TOP
    alo, _ = _numeric(a, box)
    if alo is not None and alo >= 0:
        return Interval(Affine(0), Affine(k - 1))
    return Interval(Affine(-(k - 1)), Affine(k - 1))


def shl(a, b, box):
    """``<<`` by a constant shift: exact scale by ``2**k``."""
    k = _const_of(b, box)
    if k is None or k < 0 or k > 63 or a.is_bottom:
        return TOP
    return Interval(bound_scale(a.lo, 1 << k), bound_scale(a.hi, 1 << k))


def shr(a, b, box):
    """``>>`` on a non-negative value; negative shiftees go to TOP
    (the kernels only shift unsigned or proven-non-negative values)."""
    k = _const_of(b, box)
    if k is None or k < 0 or k > 63 or a.is_bottom:
        return TOP
    alo, ahi = _numeric(a, box)
    if alo is None or alo < 0:
        return TOP
    hi = POS_INF if ahi is None else Affine(ahi >> k)
    return Interval(Affine(alo >> k), hi)


def bitand(a, b, box):
    """``&`` of non-negative operands: ``[0, min(hi)]``."""
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    alo, ahi = _numeric(a, box)
    blo, bhi = _numeric(b, box)
    if alo is None or blo is None or alo < 0 or blo < 0:
        return TOP
    his = [h for h in (ahi, bhi) if h is not None]
    if not his:
        return Interval(Affine(0), POS_INF)
    return Interval(Affine(0), Affine(min(his)))


def bitor(a, b, box):
    """``|`` of non-negative operands: bounded by the next power of
    two above both ceilings."""
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    alo, ahi = _numeric(a, box)
    blo, bhi = _numeric(b, box)
    if None in (alo, ahi, blo, bhi) or alo < 0 or blo < 0:
        return TOP
    ceiling = 1
    while ceiling <= max(ahi, bhi):
        ceiling <<= 1
    return Interval(Affine(0), Affine(ceiling - 1))


def contains(outer, inner, box):
    """Is *inner* a subset of *outer* for every symbol assignment?"""
    if inner.is_bottom:
        return True
    if outer.is_bottom:
        return False
    return (bound_le(outer.lo, inner.lo, box)
            and bound_le(inner.hi, outer.hi, box))
