"""Python-side contract verification: the facts the C proof assumes.

The interval certification of the kernels (:mod:`.interp`) is carried
out against declared facts — column value ranges, config field ranges,
the region-length cap — copied into :mod:`.contracts`.  Those facts
are only sound if the Python side actually establishes them, so this
module closes the loop statically:

* :func:`extract_contract_literal` folds the ``PLAN_CONTRACT`` /
  ``CYCLE_PLAN_CONTRACT`` dict literal out of the builder module's AST
  (constant-folding ``1 << 26``-style bound expressions), so the copy
  in :mod:`.contracts` can be compared against the literal the runtime
  validator enforces;
* :func:`contract_findings` runs the full check for one
  :class:`~repro.lint.certify.contracts.KernelContract`: the literal
  exists and equals the contract's facts, its fingerprint matches the
  pin in :mod:`repro.lint.manifest` (contract drift without a
  ``repro lint --manifest-update`` regen is a finding), the runtime
  validator is defined next to the literal, and the validator call
  *dominates* the kernel invocation in the driver (an unconditional
  top-level statement of the driver function, lexically before the
  ``_kernel(...)`` call — every path that reaches the kernel passes
  through the validator first).

The checks are sequenced and short-circuit per contract: a single-site
edit produces exactly one finding, not a cascade.
"""

import ast


class _Unfoldable(Exception):
    """A contract literal contains a non-constant expression."""


def _fold(node):
    """Evaluate the restricted constant language of contract literals.

    Dict/list displays, int/str/bool constants, unary ``-`` and the
    binary ``<<``/``+``/``-``/``*`` of folded ints — exactly what the
    bound expressions in the plan contracts use.
    """
    if isinstance(node, ast.Dict):
        out = {}
        for key, value in zip(node.keys, node.values):
            if key is None:
                raise _Unfoldable("dict unpacking in a contract literal")
            out[_fold(key)] = _fold(value)
        return out
    if isinstance(node, (ast.List, ast.Tuple)):
        return [_fold(item) for item in node.elts]
    if isinstance(node, ast.Constant):
        if isinstance(node.value, (int, str, bool)):
            return node.value
        raise _Unfoldable(f"non-int/str constant {node.value!r}")
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        operand = _fold(node.operand)
        if not isinstance(operand, int):
            raise _Unfoldable("unary minus of a non-int")
        return -operand
    if isinstance(node, ast.BinOp):
        left, right = _fold(node.left), _fold(node.right)
        if not (isinstance(left, int) and isinstance(right, int)):
            raise _Unfoldable("arithmetic on non-ints")
        if isinstance(node.op, ast.LShift):
            return left << right
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        raise _Unfoldable(f"operator {type(node.op).__name__}")
    raise _Unfoldable(f"node {type(node).__name__}")


def extract_contract_literal(tree, name):
    """``(value, lineno)`` of the module-level dict literal *name*.

    Returns ``(None, None)`` when no such assignment exists and raises
    nothing: a literal that *exists* but does not fold is reported as
    ``(None, lineno)`` so the caller can point at it.
    """
    for node in tree.body:
        targets = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = (node.target,)
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                try:
                    return _fold(node.value), node.lineno
                except _Unfoldable:
                    return None, node.lineno
    return None, None


def _function_def(tree, name):
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _calls_name(node, name):
    """Does any call to the bare name *name* appear under *node*?"""
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == name):
            return True
    return False


def _dominance_finding(module, contract):
    """Check the validator call dominates the kernel call in the driver.

    The driver function's top-level statement list is scanned in
    order: the first statement that (anywhere inside it) calls
    ``_kernel`` marks the kernel invocation; the validator call must
    appear *before* it as an unconditional top-level expression
    statement — not nested under an ``if``/``for``/``try``, where some
    path could skip it.  Returns ``(lineno, message)`` or ``None``.
    """
    driver = _function_def(module.tree, contract.driver_name)
    if driver is None:
        return (1, f"driver function {contract.driver_name!r} not found"
                   f" in {contract.driver_path}; the kernel call site"
                   " the contract names does not exist")
    kernel_index = None
    for index, stmt in enumerate(driver.body):
        if _calls_name(stmt, "_kernel"):
            kernel_index = index
            kernel_line = stmt.lineno
            break
    if kernel_index is None:
        return (driver.lineno,
                f"{contract.driver_name} never calls _kernel; the"
                " contract names a kernel invocation that is gone")
    for stmt in driver.body[:kernel_index]:
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Name)
                and stmt.value.func.id == contract.validator_name):
            return None
    return (kernel_line,
            f"the kernel call in {contract.driver_name} is not"
            f" dominated by {contract.validator_name}(): the validator"
            " must run unconditionally (top-level statement, before"
            " the _kernel call) so the certified input ranges hold on"
            " every path")


def contract_findings(project, contract, pinned_fingerprint):
    """All plan-contract findings for one kernel contract.

    Yields ``(relpath, lineno, message)`` tuples; at most one per
    contract (the checks short-circuit), so a single-site edit is a
    single finding.  *pinned_fingerprint* is the manifest pin for this
    contract's facts (``None`` when the manifest has no entry).
    """
    from repro.lint.certify.contracts import facts_fingerprint

    module = project.module(contract.python_path)
    if module is None or module.tree is None:
        # Miniature fixture trees without the builder module are not
        # lint targets for this contract (the parse error, if any, is
        # reported by the framework itself).
        return
    literal, lineno = extract_contract_literal(
        module.tree, contract.python_name
    )
    if lineno is None:
        yield (contract.python_path, 1,
               f"{contract.python_name} literal not found: the runtime"
               " contract the certified kernel assumes must be"
               " declared as a module-level dict literal")
        return
    if literal is None:
        yield (contract.python_path, lineno,
               f"{contract.python_name} does not fold to a constant"
               " dict: contract bounds must be literals (ints,"
               " [symbol, offset] pairs, shifts of constants)")
        return
    if literal != contract.python_facts:
        drift = _first_drift(literal, contract.python_facts)
        yield (contract.python_path, lineno,
               f"{contract.python_name} disagrees with the certified"
               f" facts in repro.lint.certify.contracts ({drift}); the"
               " kernel proof assumed the contracted ranges — update"
               " both sides in one reviewed change")
        return
    fingerprint = facts_fingerprint(literal)
    if fingerprint != pinned_fingerprint:
        yield (contract.python_path, lineno,
               f"{contract.python_name} fingerprint"
               f" {fingerprint[:12]}… does not match the manifest pin"
               f" ({str(pinned_fingerprint)[:12]}…): contract ranges"
               " changed without `repro lint --manifest-update`")
        return
    validator = _function_def(module.tree, contract.validator_name)
    if validator is None:
        yield (contract.python_path, lineno,
               f"runtime validator {contract.validator_name}() is not"
               f" defined in {contract.python_path}; the declared"
               " ranges are only facts if something enforces them")
        return
    driver = project.module(contract.driver_path)
    if driver is None or driver.tree is None:
        return
    dominance = _dominance_finding(driver, contract)
    if dominance is not None:
        yield (contract.driver_path, dominance[0], dominance[1])


def _first_drift(found, expected, prefix=""):
    """A short human-readable pointer at the first differing entry."""
    if isinstance(found, dict) and isinstance(expected, dict):
        for key in sorted(set(found) | set(expected), key=str):
            where = f"{prefix}.{key}" if prefix else str(key)
            if key not in found:
                return f"missing {where!r}"
            if key not in expected:
                return f"unexpected {where!r}"
            drift = _first_drift(found[key], expected[key], where)
            if drift is not None:
                return drift
        return None
    if found != expected:
        where = prefix or "top level"
        return f"{where}: {found!r} != certified {expected!r}"
    return None
