"""Interval abstract interpretation over the kernels' C subset.

``repro.lint.certify`` is the analysis layer behind the
``kernel-bounds``, ``kernel-overflow`` and ``plan-contract`` passes:

* :mod:`repro.lint.certify.intervals` — the value domain: per-variable
  ``[lo, hi]`` intervals whose endpoints are *affine expressions* over
  the kernel's symbolic sizes (``n``, ``rob_alloc``, ...), so a bound
  like ``idx <= n - 1`` is provable for every trace length at once;
* :mod:`repro.lint.certify.contracts` — the declared facts: symbol
  ranges, buffer lengths and element ranges, struct-field invariants
  — the same facts the contract manifest pins and the Python-side
  validators establish;
* :mod:`repro.lint.certify.interp` — the abstract interpreter: a
  worklist fixpoint over a statement-level C CFG (delayed widening at
  loop heads, a narrowing sweep, then one checking pass that turns
  every unproven subscript / signed wrap into an obligation);
* :mod:`repro.lint.certify.pyfacts` — the Python side: extracts the
  ranges the runtime validators in :mod:`repro.core.columnar` and
  :mod:`repro.cyclesim.plan` enforce and checks they dominate the
  kernel call, so the C proof's assumptions are themselves verified.

:func:`certified_kernels` runs the whole C analysis once per lint
invocation and memoises on the :class:`~repro.lint.framework.Project`;
the ``kernel-bounds`` and ``kernel-overflow`` passes partition its
obligations rather than re-running the fixpoint.
"""

from repro.lint.certify.contracts import kernel_contracts


def certified_kernels(project):
    """Analyse every contracted kernel once per project.

    Returns ``{relpath: KernelReport}`` (see
    :class:`repro.lint.certify.interp.KernelReport`); memoised on the
    project so the two C passes share one fixpoint run.
    """
    cache = getattr(project, "_certify_reports", None)
    if cache is None:
        from repro.lint.certify.interp import analyse_kernel
        cache = {}
        for contract in kernel_contracts():
            source = project.read_text(contract.path)
            if source is None:
                continue
            project.count_parse(contract.path, "c-unit")
            cache[contract.path] = analyse_kernel(
                source, contract, extract=project.c_extract(contract.path)
            )
        project._certify_reports = cache
    return cache
