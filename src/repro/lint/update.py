"""Regenerate the pinned hashes in :mod:`repro.lint.manifest`.

``repro lint --manifest-update`` is the *only* sanctioned way to touch
the manifest: it recomputes the frozen-oracle SHA-256 and the payload
schema fingerprint from the current tree and rewrites the whole file
in one atomic ``os.replace``, so the manifest can never be half-new.

Two interlocks keep the update an explicit, reviewable act:

* **dirty-tree refusal** — the update runs only when the working tree
  has no uncommitted changes *besides* the files whose pins are being
  regenerated (the oracle, the columnar module and the manifest
  itself).  The intended workflow — edit ``columnar.py``, bump
  ``COLUMNAR_SCHEMA_VERSION``, regenerate, commit everything together
  — stays a single reviewed change, while regenerating pins in the
  middle of unrelated uncommitted churn (where the reviewer cannot
  tell which edit the new fingerprint blesses) is refused;
* **extraction refusal** — if ``PLAN_COLUMNS``,
  ``COLUMNAR_SCHEMA_VERSION`` or a plan-contract literal
  (``PLAN_CONTRACT`` / ``CYCLE_PLAN_CONTRACT``) cannot be statically
  extracted, the update fails rather than pinning a fingerprint of
  nothing.

See the "bumping the schema" section of ``docs/STATIC_ANALYSIS.md``.
"""

import ast
import hashlib
import os
import subprocess
import tempfile

from repro.lint import manifest
from repro.lint.clang_parity.pyextract import (
    int_constant,
    payload_extras,
    plan_columns,
    schema_fingerprint,
)

#: Root-relative path of the file this module rewrites.
MANIFEST_PATH = "src/repro/lint/manifest.py"

#: Root-relative paths of the modules whose plan-contract literals are
#: fingerprinted, keyed by literal name.
_CONTRACT_SOURCES = {
    "PLAN_CONTRACT": "src/repro/core/columnar.py",
    "CYCLE_PLAN_CONTRACT": "src/repro/cyclesim/plan.py",
}

#: Files allowed to carry uncommitted changes during an update: the
#: ones whose pins are being regenerated, plus the manifest itself.
_ALLOWED_DIRTY = frozenset({
    MANIFEST_PATH,
    manifest.ORACLE_PATH,
    manifest.CYCLESIM_ORACLE_PATH,
    manifest.PAYLOAD_SCHEMA_PATH,
    *_CONTRACT_SOURCES.values(),
})

_TEMPLATE = '''\
"""Pinned content hashes and schema fingerprints for frozen contracts.

``repro.core.mlpsim_reference`` is the pre-optimization MLPsim engine,
kept bit-identical as the oracle for the engine-equivalence suite
(PR 2), and ``repro.cyclesim.simulator_reference`` is the
pre-optimization cycle-accurate pipeline simulator frozen the same way
for the cyclesim-equivalence suite.  Their usefulness rests entirely
on them never changing, so the ``frozen-oracle`` lint pass verifies
each file's SHA-256 against the value pinned here.  An edit to an
oracle therefore requires an edit to this manifest in the same commit
— an explicit, reviewable act rather than a quiet drive-by change.

The columnar plan payload (PR 7) gets the same treatment: the
``schema-version`` pass fingerprints the column set ``plan_payload``
packs and compares it against the pin below, so changing the payload
layout without bumping ``COLUMNAR_SCHEMA_VERSION`` (or bumping the
version without regenerating this manifest) fails the build.

The kernel certification (PR 10) pins the plan contracts the same
way: the ``plan-contract`` pass fingerprints the ``PLAN_CONTRACT`` /
``CYCLE_PLAN_CONTRACT`` literals the runtime validators enforce and
compares them against the pins below, so changing a contracted range
without regenerating this manifest fails the build.

Hashes are computed over text with ``\\\\r\\\\n`` normalised to ``\\\\n``, so
checkouts with translated line endings still verify.  Regenerate this
file with ``repro lint --manifest-update`` (see
``docs/STATIC_ANALYSIS.md``), never by hand.
"""

#: Root-relative path of the frozen reference engine.
ORACLE_PATH = "{oracle_path}"

#: SHA-256 of the oracle's (newline-normalised) content.
ORACLE_SHA256 = (
    "{oracle_sha256}"
)

#: Root-relative path of the frozen cycle-simulator reference.
CYCLESIM_ORACLE_PATH = "{cyclesim_oracle_path}"

#: SHA-256 of the cyclesim oracle's (newline-normalised) content.
CYCLESIM_ORACLE_SHA256 = (
    "{cyclesim_oracle_sha256}"
)

#: Root-relative path of the columnar plan module.
PAYLOAD_SCHEMA_PATH = "{payload_schema_path}"

#: The COLUMNAR_SCHEMA_VERSION the fingerprint below was pinned at.
PAYLOAD_SCHEMA_VERSION = {payload_schema_version}

#: SHA-256 fingerprint of the plan_payload column set: one
#: ``name:dtype`` line per PLAN_COLUMNS entry in order, then one
#: ``+key`` line per extra payload record (see
#: ``repro.lint.clang_parity.pyextract.schema_fingerprint``).
PAYLOAD_SCHEMA_SHA256 = (
    "{payload_schema_sha256}"
)

#: ``facts_fingerprint`` pins of the Python plan-contract literals the
#: kernel certification assumes, keyed by literal name (see
#: ``repro.lint.certify.contracts``).
PLAN_CONTRACT_FINGERPRINTS = {{
    "PLAN_CONTRACT": (
        "{plan_contract_sha256}"
    ),
    "CYCLE_PLAN_CONTRACT": (
        "{cycle_plan_contract_sha256}"
    ),
}}
'''


class ManifestUpdateError(Exception):
    """The manifest could not (or must not) be regenerated."""


def _read_normalised(root, relpath):
    path = os.path.join(root, relpath)
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read().replace("\r\n", "\n")
    except OSError as exc:
        raise ManifestUpdateError(
            f"cannot read {relpath}: {exc}"
        ) from exc


def _unexpected_dirty_paths(root):
    """Uncommitted paths that are *not* part of a manifest update."""
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root, capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError) as exc:
        raise ManifestUpdateError(
            "not a git work tree (or git is unavailable): the dirty-"
            "tree check cannot run, so the manifest is not regenerated"
        ) from exc
    unexpected = []
    for line in proc.stdout.splitlines():
        if len(line) < 4:
            continue
        path = line[3:]
        # Renames are reported as "old -> new"; the new path counts.
        if " -> " in path:
            path = path.split(" -> ", 1)[1]
        path = path.strip().strip('"')
        if path not in _ALLOWED_DIRTY:
            unexpected.append(path)
    return unexpected


def update_manifest(root="."):
    """Regenerate ``manifest.py``; returns a summary dict.

    Raises :class:`ManifestUpdateError` when the tree carries
    uncommitted changes beyond the pinned files, or when the schema
    constants cannot be extracted.
    """
    dirty = _unexpected_dirty_paths(root)
    if dirty:
        shown = ", ".join(sorted(dirty)[:5])
        if len(dirty) > 5:
            shown += f", ... ({len(dirty) - 5} more)"
        raise ManifestUpdateError(
            f"refusing to regenerate pins in a dirty tree: {shown}"
            " — commit or stash everything except the schema change"
            " first, so the new fingerprint blesses exactly one edit"
        )

    oracle_sha = hashlib.sha256(
        _read_normalised(root, manifest.ORACLE_PATH).encode()
    ).hexdigest()
    cyclesim_oracle_sha = hashlib.sha256(
        _read_normalised(root, manifest.CYCLESIM_ORACLE_PATH).encode()
    ).hexdigest()

    columnar_source = _read_normalised(root, manifest.PAYLOAD_SCHEMA_PATH)
    try:
        tree = ast.parse(columnar_source)
    except SyntaxError as exc:
        raise ManifestUpdateError(
            f"{manifest.PAYLOAD_SCHEMA_PATH} does not parse: {exc}"
        ) from exc
    columns = plan_columns(tree)
    version = int_constant(tree, "COLUMNAR_SCHEMA_VERSION")
    if columns is None or version is None:
        missing = ("PLAN_COLUMNS" if columns is None
                   else "COLUMNAR_SCHEMA_VERSION")
        raise ManifestUpdateError(
            f"cannot extract {missing} from"
            f" {manifest.PAYLOAD_SCHEMA_PATH}; refusing to pin a"
            " fingerprint of nothing"
        )
    fingerprint = schema_fingerprint(columns[0], payload_extras(tree))

    from repro.lint.certify.contracts import facts_fingerprint
    from repro.lint.certify.pyfacts import extract_contract_literal

    contract_pins = {}
    for literal_name, relpath in _CONTRACT_SOURCES.items():
        source = _read_normalised(root, relpath)
        try:
            contract_tree = ast.parse(source)
        except SyntaxError as exc:
            raise ManifestUpdateError(
                f"{relpath} does not parse: {exc}"
            ) from exc
        facts, lineno = extract_contract_literal(contract_tree,
                                                 literal_name)
        if facts is None:
            raise ManifestUpdateError(
                f"cannot extract the {literal_name} literal from"
                f" {relpath}; refusing to pin a fingerprint of nothing"
            )
        contract_pins[literal_name] = facts_fingerprint(facts)

    content = _TEMPLATE.format(
        oracle_path=manifest.ORACLE_PATH,
        oracle_sha256=oracle_sha,
        cyclesim_oracle_path=manifest.CYCLESIM_ORACLE_PATH,
        cyclesim_oracle_sha256=cyclesim_oracle_sha,
        payload_schema_path=manifest.PAYLOAD_SCHEMA_PATH,
        payload_schema_version=version[0],
        payload_schema_sha256=fingerprint,
        plan_contract_sha256=contract_pins["PLAN_CONTRACT"],
        cycle_plan_contract_sha256=contract_pins["CYCLE_PLAN_CONTRACT"],
    )

    target = os.path.join(root, MANIFEST_PATH)
    changed = True
    try:
        with open(target, encoding="utf-8") as handle:
            changed = handle.read() != content
    except OSError:
        pass
    if changed:
        # One atomic replace: the manifest is never observable half-new.
        fd, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(target), prefix=".manifest-", suffix=".py"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(content)
            os.replace(temp_path, target)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    return {
        "oracle_sha256": oracle_sha,
        "cyclesim_oracle_sha256": cyclesim_oracle_sha,
        "payload_schema_version": version[0],
        "payload_schema_sha256": fingerprint,
        "plan_contract_fingerprints": contract_pins,
        "changed": changed,
    }
