"""SARIF 2.1.0 serialisation of reprolint findings.

``repro lint --format sarif`` emits a single-run SARIF log so CI can
upload the findings to GitHub code scanning
(``github/codeql-action/upload-sarif``) and reviewers see them as
inline annotations with rule metadata, instead of grepping job logs.

The mapping is deliberately minimal and stable:

* every registered pass becomes a ``rules[]`` entry (id, description,
  default severity level) whether or not it fired — so a clean run
  still documents what was checked;
* every finding becomes a ``results[]`` entry pointing at the
  repo-relative ``artifactLocation`` and 1-based ``startLine``, with
  ``level`` mapped from :class:`~repro.lint.findings.Severity`.
"""

from repro.lint.findings import Severity

#: The one schema version we emit; bump only with a reviewed change.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _level(severity):
    return "error" if severity is Severity.ERROR else "warning"


def sarif_payload(findings, passes):
    """The SARIF log dict for *findings* under the *passes* registry.

    *passes* is ``{pass_id: LintPass subclass}`` (the shape of
    :func:`repro.lint.framework.registered_passes`); *findings* is a
    list of :class:`~repro.lint.findings.Finding`.
    """
    rule_ids = sorted(passes)
    rule_index = {pass_id: index for index, pass_id in enumerate(rule_ids)}
    rules = [
        {
            "id": pass_id,
            "shortDescription": {"text": passes[pass_id].description},
            "defaultConfiguration": {
                "level": _level(passes[pass_id].severity),
            },
        }
        for pass_id in rule_ids
    ]
    results = [
        {
            "ruleId": finding.pass_id,
            "ruleIndex": rule_index.get(finding.pass_id, -1),
            "level": _level(finding.severity),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(finding.line, 1)},
                    }
                }
            ],
        }
        for finding in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {
                        "text": "repository root (the --root argument)",
                    }},
                },
                "results": results,
            }
        ],
    }
