"""Pinned content hashes and schema fingerprints for frozen contracts.

``repro.core.mlpsim_reference`` is the pre-optimization MLPsim engine,
kept bit-identical as the oracle for the engine-equivalence suite
(PR 2), and ``repro.cyclesim.simulator_reference`` is the
pre-optimization cycle-accurate pipeline simulator frozen the same way
for the cyclesim-equivalence suite.  Their usefulness rests entirely
on them never changing, so the ``frozen-oracle`` lint pass verifies
each file's SHA-256 against the value pinned here.  An edit to an
oracle therefore requires an edit to this manifest in the same commit
— an explicit, reviewable act rather than a quiet drive-by change.

The columnar plan payload (PR 7) gets the same treatment: the
``schema-version`` pass fingerprints the column set ``plan_payload``
packs and compares it against the pin below, so changing the payload
layout without bumping ``COLUMNAR_SCHEMA_VERSION`` (or bumping the
version without regenerating this manifest) fails the build.

The kernel certification (PR 10) pins the plan contracts the same
way: the ``plan-contract`` pass fingerprints the ``PLAN_CONTRACT`` /
``CYCLE_PLAN_CONTRACT`` literals the runtime validators enforce and
compares them against the pins below, so changing a contracted range
without regenerating this manifest fails the build.

Hashes are computed over text with ``\\r\\n`` normalised to ``\\n``, so
checkouts with translated line endings still verify.  Regenerate this
file with ``repro lint --manifest-update`` (see
``docs/STATIC_ANALYSIS.md``), never by hand.
"""

#: Root-relative path of the frozen reference engine.
ORACLE_PATH = "src/repro/core/mlpsim_reference.py"

#: SHA-256 of the oracle's (newline-normalised) content.
ORACLE_SHA256 = (
    "b2188eacade21d0d3b056dbe43b99a7ff76fe5d4eee82013fa085dcc6443e961"
)

#: Root-relative path of the frozen cycle-simulator reference.
CYCLESIM_ORACLE_PATH = "src/repro/cyclesim/simulator_reference.py"

#: SHA-256 of the cyclesim oracle's (newline-normalised) content.
CYCLESIM_ORACLE_SHA256 = (
    "725733cdb43602f3b61201e1c3172c8f0f63f3970e858519a4db5401b7b83e46"
)

#: Root-relative path of the columnar plan module.
PAYLOAD_SCHEMA_PATH = "src/repro/core/columnar.py"

#: The COLUMNAR_SCHEMA_VERSION the fingerprint below was pinned at.
PAYLOAD_SCHEMA_VERSION = 1

#: SHA-256 fingerprint of the plan_payload column set: one
#: ``name:dtype`` line per PLAN_COLUMNS entry in order, then one
#: ``+key`` line per extra payload record (see
#: ``repro.lint.clang_parity.pyextract.schema_fingerprint``).
PAYLOAD_SCHEMA_SHA256 = (
    "a87855d9fd2a0280ba265a04dd00f87ee187e4dad46f929142ccfbbf17c5d3ca"
)

#: ``facts_fingerprint`` pins of the Python plan-contract literals the
#: kernel certification assumes, keyed by literal name (see
#: ``repro.lint.certify.contracts``).
PLAN_CONTRACT_FINGERPRINTS = {
    "PLAN_CONTRACT": (
        "34257d537596cc03008579da5ce61e21dd8d9cf80df7da5c01dcd9f3657bca5b"
    ),
    "CYCLE_PLAN_CONTRACT": (
        "e62d25af0454fc9bcd749c8394f6347c34b0402899d6d4fbce2d8b7769bcd296"
    ),
}
