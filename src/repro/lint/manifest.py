"""Pinned content hashes for frozen files.

``repro.core.mlpsim_reference`` is the pre-optimization MLPsim engine,
kept bit-identical as the oracle for the engine-equivalence suite
(PR 2).  Its usefulness rests entirely on it never changing, so the
``frozen-oracle`` lint pass verifies the file's SHA-256 against the
value pinned here.  An edit to the oracle therefore requires an edit
to this manifest in the same commit — an explicit, reviewable act
rather than a quiet drive-by change.

The hash is computed over the file text with ``\\r\\n`` normalised to
``\\n``, so checkouts with translated line endings still verify.
"""

#: Root-relative path of the frozen reference engine.
ORACLE_PATH = "src/repro/core/mlpsim_reference.py"

#: SHA-256 of the oracle's (newline-normalised) content.
ORACLE_SHA256 = (
    "b2188eacade21d0d3b056dbe43b99a7ff76fe5d4eee82013fa085dcc6443e961"
)
