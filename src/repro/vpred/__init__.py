"""Value-prediction substrate (paper Section 5.5 / Table 6).

The paper evaluates a 16K-entry last-value predictor applied *only to
missing loads* — predicting the value of a load that left the chip lets
dependent missing loads issue in the same epoch.  A perfect variant
backs the limit study of Section 5.6.
"""

from repro.vpred.last_value import LastValuePredictor, ValuePredictorStats
from repro.vpred.perfect import PerfectValuePredictor

__all__ = [
    "LastValuePredictor",
    "ValuePredictorStats",
    "PerfectValuePredictor",
]
