"""Perfect value prediction for the limit study (Section 5.6).

Every missing load's value is predicted correctly, so register data
dependences never delay a dependent missing load to a later epoch.  Note
that even perfect value prediction does *not* resolve a mispredicted
branch early: the hardware cannot act on an unvalidated predicted value
for misprediction recovery, which is why ``RAE.perfVP`` and
``RAE.perfBP`` improve different epochs and compose super-additively in
Figure 10.
"""

from repro.vpred.last_value import ValuePredictorStats


class PerfectValuePredictor:
    """Oracle value predictor: every missing-load lookup is correct."""

    def __init__(self):
        self.stats = ValuePredictorStats()

    def predict(self, pc):
        """Unsupported: the oracle is outcome-based (use observe)."""
        del pc
        raise NotImplementedError(
            "perfect prediction is outcome-based; use observe()"
        )

    def observe(self, pc, value):
        """Always returns ``"correct"``."""
        del pc, value
        self.stats.correct += 1
        return "correct"
