"""16K-entry last-value predictor for missing loads.

Indexed by load PC, tagged, each entry remembers the last value the load
produced together with a 2-bit confidence counter.  A prediction is made
only at high confidence; low-confidence lookups are "no predict", which
is how the paper's Table 6 splits outcomes into Correct / Wrong /
No Predict.

Because the predictor is consulted only for *missing* loads (Section 3.6
argues this "drastically reduces the size of the value predictor"), its
training stream is the miss stream, not every load.
"""

import dataclasses
from repro.robustness.errors import ConfigError


@dataclasses.dataclass
class ValuePredictorStats:
    """Outcome counters in the shape of the paper's Table 6."""

    correct: int = 0
    wrong: int = 0
    no_predict: int = 0

    @property
    def lookups(self):
        return self.correct + self.wrong + self.no_predict

    def rates(self):
        """Return (correct, wrong, no_predict) as fractions of lookups."""
        total = self.lookups
        if not total:
            return (0.0, 0.0, 1.0)
        return (
            self.correct / total,
            self.wrong / total,
            self.no_predict / total,
        )

    def format(self):
        """One-line correct/wrong/no-predict rendering."""
        correct, wrong, nopred = self.rates()
        return (
            f"correct {correct:5.1%}  wrong {wrong:5.1%}"
            f"  no-predict {nopred:5.1%}  ({self.lookups} missing loads)"
        )


class _Entry:
    __slots__ = ("tag", "value", "confidence")

    def __init__(self, tag, value):
        self.tag = tag
        self.value = value
        self.confidence = 1


class LastValuePredictor:
    """Direct-mapped, tagged last-value predictor with 2-bit confidence.

    Confidence policy: a matching value increments confidence (saturating
    at 3); a mismatch resets it to 0 and replaces the stored value.
    Predictions are issued when confidence >= *threshold* (default 2).
    Tag conflicts evict (direct-mapped).
    """

    def __init__(self, entries=16 * 1024, threshold=2):
        if entries & (entries - 1):
            raise ConfigError("value predictor size must be a power of two")
        self.entries = entries
        self.threshold = threshold
        self._mask = entries - 1
        self._table = [None] * entries
        self.stats = ValuePredictorStats()

    def _slot(self, pc):
        word = pc >> 2
        return word & self._mask, word >> (self.entries.bit_length() - 1)

    def predict(self, pc):
        """Return the predicted value for the load at *pc*, or None."""
        index, tag = self._slot(pc)
        entry = self._table[index]
        if entry is None or entry.tag != tag:
            return None
        if entry.confidence < self.threshold:
            return None
        return entry.value

    def train(self, pc, value):
        """Record the actual *value* produced by the load at *pc*."""
        index, tag = self._slot(pc)
        entry = self._table[index]
        if entry is None or entry.tag != tag:
            self._table[index] = _Entry(tag, value)
            return
        if entry.value == value:
            if entry.confidence < 3:
                entry.confidence += 1
        else:
            entry.value = value
            entry.confidence = 0

    def observe(self, pc, value):
        """Predict-then-train for one missing load; return the outcome.

        Returns one of ``"correct"``, ``"wrong"`` or ``"no_predict"`` and
        updates :attr:`stats` accordingly.
        """
        prediction = self.predict(pc)
        if prediction is None:
            outcome = "no_predict"
            self.stats.no_predict += 1
        elif prediction == value:
            outcome = "correct"
            self.stats.correct += 1
        else:
            outcome = "wrong"
            self.stats.wrong += 1
        self.train(pc, value)
        return outcome
