"""Synthetic OLTP database workload.

Stands in for the paper's proprietary database trace.  The published
characteristics it is calibrated to (Tables 1/5/6, Figures 2/5):

* the highest L2 load-miss rate of the three workloads (~0.84/100 insts);
* a multi-megabyte instruction footprint, making missing instruction
  fetches 12-18% of epoch triggers;
* misses that are *clustered* and partly *dependent* — B-tree index
  descents are pointer chases whose next node address comes from the
  missing load itself, while row/buffer accesses are independent bursts;
* locking via CASA and MEMBAR;
* branches on fetched row data, some of which mispredict while dependent
  on an off-chip load (the unresolvable mispredictions of Section 3.2.4);
* moderate value locality on missing loads (Table 6: 42% last-value
  correct).

One transaction = a fixed script at fixed PCs (parse/dispatch calls into
the code footprint, one or two index descents, a row burst — possibly
under a CASA/MEMBAR lock — and a log write).  All randomness appears as
branch outcomes, loop trip counts, callee selection and data addresses,
never as fresh code addresses, so the I-caches and predictors see a
stable static program.
"""

from repro.workloads.base import SyntheticWorkload
from repro.workloads.codegen import CodeFootprint
from repro.workloads.synthesis import (
    BranchSites,
    RecentPool,
    Region,
    ValueSites,
)

# Register conventions (codegen reserves 1-3 as region base registers
# and 16-47 as template scratch).
_CHASE = 8  # B-tree node pointer
_ROWBASE = 9  # row address being assembled
_FIELD0 = 10  # loaded row fields
_FIELD1 = 11
_CMP = 12  # key comparison temporary
_LOCK = 14  # lock word
_LOGV = 15  # value being logged
_CTR = 5  # loop counters (on-chip, never miss-dependent)


class DatabaseWorkload(SyntheticWorkload):
    """OLTP-style trace generator (the paper's "Database" workload)."""

    name = "database"

    def __init__(self, seed=1234, num_functions=220, body_length=56,
                 calls_per_txn=(7, 13), descent_depth=(3, 4),
                 rows_per_txn=(4, 6), row_spacing=36,
                 second_descent_probability=0.25, lock_probability=0.5,
                 reuse_fraction=0.5, reuse_lines=5000, chase_value_repeat=0.89,
                 row_value_repeat=0.86, data_branch_bias=0.88):
        super().__init__(seed=seed)
        self.num_functions = num_functions
        self.body_length = body_length
        self.calls_per_txn = calls_per_txn
        self.descent_depth = descent_depth
        self.rows_per_txn = rows_per_txn
        self.row_spacing = row_spacing
        self.second_descent_probability = second_descent_probability
        self.lock_probability = lock_probability
        self.reuse_fraction = reuse_fraction
        self.reuse_lines = reuse_lines
        self.chase_value_repeat = chase_value_repeat
        self.row_value_repeat = row_value_repeat
        self.data_branch_bias = data_branch_bias

    def setup(self, rng):
        # ~220 functions x ~230B ≈ 0.9MB of code: far beyond the L1I and
        # a large tenant of the 2MB shared L2 it contends for with data.
        self.code = CodeFootprint(
            rng,
            num_functions=self.num_functions,
            body_length=self.body_length,
            zipf_exponent=1.3,
            template_pool=48,
            branch_fraction=0.13,
        )
        self.hot = Region(0x1000_0000, 12 * 1024)  # L1-resident metadata
        self.warm = Region(0x2000_0000, 96 * 1024)  # L2-resident caches
        self.index = Region(0x4000_0000, 192 * 1024 * 1024)  # B-tree nodes
        self.rows = Region(0x5000_0000, 192 * 1024 * 1024)  # buffer pool
        # Recently-used rows and index nodes are re-touched inside later
        # bursts (a row cache): those lines are resident in a large L2
        # and evicted from a small one, which is what the L2 sweep of
        # Figure 7 moves — and because they sit *inside* miss clusters,
        # a bigger L2 thins the clusters and MLP falls, as in the paper.
        self.recent_rows = RecentPool(self.reuse_lines)
        self.recent_nodes = RecentPool(self.reuse_lines // 2)
        self.log = Region(0x6000_0000, 64 * 1024 * 1024)
        self.locks = Region(0x1100_0000, 4 * 1024)
        self.values = ValueSites(repeat_prob=self.row_value_repeat)
        self.chase_values = ValueSites(repeat_prob=self.chase_value_repeat)
        self.branches = BranchSites(predictable_fraction=0.96, strong_bias=0.98)
        self.context = {
            "hot": self.hot,
            "warm": self.warm,
            "values": self.values,
            "branches": self.branches,
        }
        # Fixed motif-block addresses (below the code footprint),
        # staggered so blocks do not alias in the PC-indexed predictors.
        self.txn_base = 0x0080_0000
        self.descent_base = 0x0081_0100
        self.rows_base = 0x0082_0200
        self.lock_base = 0x0083_0300

    # -- motif blocks (fixed PCs) -----------------------------------------

    def _descent(self, em, rng):
        """Pointer-chase down a B-tree at the fixed descent block.

        Each level's node address comes from the previous level's
        (missing) load: the misses are truly dependent, one epoch each
        on a conventional machine, and only value prediction can
        parallelise them.
        """
        ret = em.call_block(self.descent_base)
        em.alu(_CHASE, 1, 7)  # root address from hot metadata
        depth = rng.randint(*self.descent_depth)
        head = em.pc
        for level in range(depth):
            em.pc = head
            node = None
            if rng.random() < self.reuse_fraction:
                node = self.recent_nodes.sample(rng)
            if node is None:
                node = self.index.next_line(stride_lines=97)
                self.recent_nodes.insert(node)
            em.load(_CHASE, node, src1=_CHASE,
                    value=self.chase_values.value(rng, em.pc))
            em.alu(_CMP, _CHASE, 1)  # key comparison on fetched node
            branch_site = em.pc
            self.branches.force_bias(branch_site, self.data_branch_bias)
            taken = self.branches.outcome(rng, branch_site)
            em.branch(taken, branch_site + 12, src1=_CMP)
            if not taken:
                em.alu(_FIELD0, _CMP, 7)
                em.alu(_CHASE, _CHASE, _FIELD0)
            em.branch(level + 1 < depth, head, src1=_CTR)
        em.jump(ret)

    def _rows(self, em, rng):
        """Row burst at the fixed rows block: independent off-chip lines
        (each address is assembled from on-chip state)."""
        ret = em.call_block(self.rows_base)
        count = rng.randint(*self.rows_per_txn)
        head = em.pc
        for r in range(count):
            em.pc = head
            em.alu(_ROWBASE, 3, 7)
            row = None
            if rng.random() < self.reuse_fraction:
                row = self.recent_rows.sample(rng)
            if row is None:
                row = self.rows.next_line(stride_lines=131)
                self.recent_rows.insert(row)
            em.load(_FIELD0, row, src1=_ROWBASE,
                    value=self.values.value(rng, em.pc))
            em.alu(_LOGV, _FIELD0, _LOGV)
            second = rng.random() < 0.3
            em.branch(not second, em.pc + 8, src1=_CTR)
            if second:
                em.load(_FIELD1, row + 64, src1=_ROWBASE,
                        value=self.values.value(rng, em.pc))
            # Per-row processing keeps consecutive rows further apart
            # than a 64-entry window but well inside a runahead period.
            for k in range(self.row_spacing):
                em.alu(20 + (k & 7), 20 + ((k + 1) & 7), 1)
            em.branch(r + 1 < count, head, src1=_CTR)
        em.jump(ret)

    def _locked_rows(self, em, rng):
        """CASA acquire / MEMBAR + store release around a row burst."""
        ret = em.call_block(self.lock_base)
        lock_addr = self.locks.random_addr(rng)
        em.alu(_LOCK, 1, 0)
        em.cas(_LOCK, lock_addr, src1=1, data_src=_LOCK, value=0)
        self._rows(em, rng)
        em.membar()
        em.store(lock_addr, data_src=0, src1=1)
        em.jump(ret)

    # -- transaction driver (fixed script) ---------------------------------

    def emit_transaction(self, em, rng):
        base = self.txn_base
        em.jump(base)

        # Parse/dispatch: calls into the large code footprint.
        calls = rng.randint(*self.calls_per_txn)
        for k in range(calls):
            em.pc = base
            self.code.call(em, rng, self.context)
            em.branch(k + 1 < calls, base, src1=_CTR)  # base+4

        # Index descents.
        descents = 2 if rng.random() < self.second_descent_probability else 1
        for d in range(descents):
            em.pc = base + 8
            self._descent(em, rng)
            em.branch(d + 1 < descents, base + 8, src1=_CTR)  # base+12

        # Row access, possibly under a lock.
        locked = rng.random() < self.lock_probability
        em.pc = base + 16
        em.branch(locked, base + 28, src1=_CTR)
        if not locked:
            self._rows(em, rng)  # call site base+20, returns to base+24
            em.jump(base + 36)  # base+24
        else:
            em.pc = base + 28
            self._locked_rows(em, rng)  # returns to base+32
            em.jump(base + 36)  # base+32

        # Log write.
        em.pc = base + 36
        words = rng.randint(2, 4)
        log_line = self.log.next_line()
        for w in range(words):
            em.pc = base + 36
            em.store(log_line + 8 * w, data_src=_LOGV, src1=4)
            em.branch(w + 1 < words, base + 36, src1=_CTR)  # base+40
        # Transaction ends at base+44; the next one jumps from here.
