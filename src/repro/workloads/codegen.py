"""Static code generation for synthetic workloads.

Commercial applications execute a large static code base with heavy
reuse of a hot core plus a long tail of rarely-touched functions.  To
reproduce the instruction-fetch behaviour (I-cache and L2-I misses,
gshare training), each workload builds a :class:`CodeFootprint` at
setup: a set of *functions* with fixed base addresses and fixed
instruction *templates*.  Every dynamic call of a function replays its
template at the same PCs with the same register pattern, so the branch
predictor, BTB and I-caches see a stable static program — only the data
addresses, loaded values and branch outcomes vary per instance, driven
by the site models of :mod:`repro.workloads.synthesis`.

Template operations (kind, operands):

* ``("alu", dst, src1, src2)`` — register computation;
* ``("load", dst, addr_reg, kind)`` — data load; *kind* selects the
  hot/warm region the instance address is drawn from;
* ``("store", data_reg, addr_reg, kind)`` — data store, same kinds;
* ``("branch", skip)`` — conditional forward branch over the next
  *skip* template slots when taken (outcome drawn from the branch-site
  model);
* ``("nop",)``.
"""

from repro.workloads.synthesis import ZipfSampler

#: Scratch registers used inside function templates.
SCRATCH_REGS = tuple(range(16, 48))

#: Base registers holding region pointers (set up implicitly; reads from
#: them never stall because they are written by nothing in the trace).
HOT_BASE = 1
WARM_BASE = 2
COLD_BASE = 3


class FunctionTemplate:
    """One function: a fixed instruction template at a fixed address."""

    __slots__ = ("base_pc", "ops")

    def __init__(self, base_pc, ops):
        self.base_pc = base_pc
        self.ops = ops

    def __len__(self):
        return len(self.ops)


def build_template(rng, length, load_fraction=0.22, store_fraction=0.08,
                   branch_fraction=0.16, warm_share=0.3):
    """Generate a function body template of *length* operations.

    The mix defaults approximate integer server code: roughly a fifth
    loads, a sixth branches, the rest ALU.  ``warm_share`` is the share
    of memory operations directed at the warm (L2-resident) region
    rather than the hot (L1-resident) one.
    """
    ops = []
    live = list(rng.sample(SCRATCH_REGS, 8))
    for position in range(length):
        roll = rng.random()
        kind_roll = rng.random()
        region = "warm" if kind_roll < warm_share else "hot"
        if roll < load_fraction:
            dst = rng.choice(SCRATCH_REGS)
            ops.append(("load", dst, rng.choice(live), region))
            live[rng.randrange(len(live))] = dst
        elif roll < load_fraction + store_fraction:
            ops.append(("store", rng.choice(live), rng.choice(live), region))
        elif roll < load_fraction + store_fraction + branch_fraction:
            remaining = length - position - 1
            skip = min(rng.randrange(1, 6), remaining)
            if skip > 0:
                ops.append(("branch", skip, rng.choice(live)))
            else:
                ops.append(("nop",))
        else:
            dst = rng.choice(SCRATCH_REGS)
            ops.append(("alu", dst, rng.choice(live), rng.choice(live)))
            live[rng.randrange(len(live))] = dst
    return ops


class CodeFootprint:
    """The static program: functions, addresses and call-site sampling.

    Parameters
    ----------
    rng:
        Source of randomness for the static layout.
    num_functions:
        Static function count; together with the body length this sets
        the instruction footprint (one op = 4 bytes).
    body_length:
        Mean template length (actual lengths vary ±40%).
    zipf_exponent:
        Skew of the call distribution; ~1.0 mimics commercial reuse.
    code_base:
        Base address of the code region.
    mix:
        Extra keyword arguments forwarded to :func:`build_template`.
    """

    def __init__(self, rng, num_functions, body_length, zipf_exponent=1.0,
                 code_base=0x0100_0000, template_pool=None, **mix):
        pool = []
        pool_size = template_pool or num_functions
        for _ in range(pool_size):
            length = max(6, int(body_length * rng.uniform(0.6, 1.4)))
            pool.append(build_template(rng, length, **mix))
        self.functions = []
        pc = code_base
        for index in range(num_functions):
            # Large footprints share body templates (the I-caches and
            # predictors only see PCs, which stay unique per function).
            ops = pool[index % pool_size]
            self.functions.append(FunctionTemplate(pc, ops))
            # Functions start on fresh lines so footprints are honest.
            pc += (len(ops) * 4 + 127) & ~63
        self.code_base = code_base
        self.code_end = pc
        self._sampler = ZipfSampler(num_functions, exponent=zipf_exponent)

    @property
    def footprint_bytes(self):
        """Total static code size."""
        return self.code_end - self.code_base

    def sample(self, rng):
        """Draw a function index from the Zipf call distribution."""
        return self._sampler.sample(rng)

    def call(self, em, rng, context, function_index=None):
        """Emit one dynamic execution of a function.

        *context* supplies the data behaviour: ``hot``/``warm`` regions,
        ``values`` (:class:`ValueSites`) and ``branches``
        (:class:`BranchSites`).  Returns the number of instructions
        emitted (including the call and return jumps).
        """
        if function_index is None:
            function_index = self._sampler.sample(rng)
        function = self.functions[function_index]
        return_pc = em.pc + 4
        before = len(em)
        em.jump(function.base_pc)

        hot = context["hot"]
        warm = context["warm"]
        values = context["values"]
        branches = context["branches"]

        ops = function.ops
        index = 0
        n = len(ops)
        while index < n:
            op = ops[index]
            kind = op[0]
            pc = function.base_pc + index * 4
            if em.pc != pc:
                em.pc = pc
            if kind == "alu":
                em.alu(op[1], op[2], op[3])
                index += 1
            elif kind == "load":
                region = hot if op[3] == "hot" else warm
                addr = region.random_addr(rng)
                em.load(op[1], addr, src1=op[2],
                        value=values.value(rng, pc))
                index += 1
            elif kind == "store":
                region = hot if op[3] == "hot" else warm
                addr = region.random_addr(rng)
                em.store(addr, data_src=op[1], src1=op[2])
                index += 1
            elif kind == "branch":
                taken = branches.outcome(rng, pc)
                target = pc + 4 * (op[1] + 1)
                em.branch(taken, target, src1=op[2])
                index += op[1] + 1 if taken else 1
            else:  # nop
                em.nop()
                index += 1
        em.jump(return_pc)
        return len(em) - before
