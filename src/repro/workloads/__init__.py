"""Synthetic commercial workloads.

The paper evaluates three proprietary traces: a database workload,
SPECjbb2000 and SPECweb99 (Section 4.2).  We cannot have those, so this
package synthesises traces with the *published* characteristics of each
workload — L2 miss rate, miss clustering, serializing-instruction
density, instruction footprint, software-prefetch usage, and the
dependence structure between misses — which are exactly the properties
the epoch model says determine MLP (see DESIGN.md for the substitution
argument).

Use :func:`get_workload` / :func:`generate_trace` for the standard
three, or instantiate the generator classes directly to explore
parameter variations.
"""

from repro.workloads.base import Emitter, SyntheticWorkload
from repro.workloads.database import DatabaseWorkload
from repro.workloads.specjbb import SpecJBBWorkload
from repro.workloads.specweb import SpecWebWorkload
from repro.workloads.streaming import StreamingWorkload
from repro.workloads.calibration import (
    CalibrationTargets,
    PAPER_TARGETS,
    check_calibration,
)
from repro.robustness.errors import ConfigError

#: The paper's three workloads, plus the scientific contrast case the
#: introduction draws (``streaming`` is not a paper benchmark).
WORKLOADS = {
    "database": DatabaseWorkload,
    "specjbb2000": SpecJBBWorkload,
    "specweb99": SpecWebWorkload,
    "streaming": StreamingWorkload,
}

#: The subset evaluated by the paper (exhibits iterate these).
PAPER_WORKLOADS = ("database", "specjbb2000", "specweb99")


def get_workload(name, seed=1234, **params):
    """Instantiate the named workload generator."""
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; expected one of {sorted(WORKLOADS)}"
        ) from None
    return cls(seed=seed, **params)


def generate_trace(name, length, seed=1234, **params):
    """Generate a trace of ~*length* instructions for the named workload."""
    return get_workload(name, seed=seed, **params).generate(length)


__all__ = [
    "Emitter",
    "SyntheticWorkload",
    "DatabaseWorkload",
    "SpecJBBWorkload",
    "SpecWebWorkload",
    "StreamingWorkload",
    "PAPER_WORKLOADS",
    "CalibrationTargets",
    "PAPER_TARGETS",
    "check_calibration",
    "WORKLOADS",
    "get_workload",
    "generate_trace",
]
