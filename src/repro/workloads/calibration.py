"""Published workload characteristics and calibration checking.

The paper reports, per workload, the L2 miss rate, the default-machine
MLP, the in-order MLPs, the value-predictor accuracy and the share of
I-miss epoch triggers.  :data:`PAPER_TARGETS` records those numbers;
:func:`check_calibration` measures the same quantities on a synthetic
trace and reports how far each is from the paper (within generous bands
— the goal is the *shape* of the results, not the absolute values of a
proprietary trace).
"""

import dataclasses

from repro.trace.annotate import annotate
from repro.trace.stats import compute_stats
from repro.robustness.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class CalibrationTargets:
    """Published per-workload characteristics (paper Tables 1, 5, 6)."""

    name: str
    l2_miss_rate_per_100: float  # Table 1 (loads, per 100 insts)
    mlp_64c: float  # Table 1 / Table 3 at 1000 cycles
    mlp_stall_on_miss: float  # Table 5
    mlp_stall_on_use: float  # Table 5
    vp_correct: float  # Table 6
    vp_wrong: float
    imiss_trigger_share: tuple  # Figure 5 (low, high), fraction of epochs
    serializing_fraction: float  # Section 3.2.2 (SPECjbb: >0.6%)


PAPER_TARGETS = {
    "database": CalibrationTargets(
        name="database",
        l2_miss_rate_per_100=0.84,
        mlp_64c=1.38,
        mlp_stall_on_miss=1.02,
        mlp_stall_on_use=1.06,
        vp_correct=0.42,
        vp_wrong=0.07,
        imiss_trigger_share=(0.12, 0.18),
        serializing_fraction=0.002,
    ),
    "specjbb2000": CalibrationTargets(
        name="specjbb2000",
        l2_miss_rate_per_100=0.19,
        mlp_64c=1.13,
        mlp_stall_on_miss=1.00,
        mlp_stall_on_use=1.01,
        vp_correct=0.20,
        vp_wrong=0.03,
        imiss_trigger_share=(0.0, 0.02),
        serializing_fraction=0.006,
    ),
    "specweb99": CalibrationTargets(
        name="specweb99",
        l2_miss_rate_per_100=0.09,
        mlp_64c=1.28,
        mlp_stall_on_miss=1.10,
        mlp_stall_on_use=1.13,
        vp_correct=0.25,
        vp_wrong=0.05,
        imiss_trigger_share=(0.10, 0.13),
        serializing_fraction=0.0005,
    ),
}


@dataclasses.dataclass
class CalibrationReport:
    """Measured-vs-target characteristics for one synthetic trace."""

    name: str
    measured_miss_rate: float
    target_miss_rate: float
    measured_serializing: float
    target_serializing: float
    measured_vp_correct: float
    target_vp_correct: float
    measured_imiss_per_100: float

    def format(self):
        """Multi-line measured-vs-paper rendering."""
        return "\n".join(
            [
                f"calibration[{self.name}]",
                "  L2 load miss rate /100: measured"
                f" {self.measured_miss_rate:.3f} vs paper"
                f" {self.target_miss_rate:.2f}",
                "  serializing fraction:   measured"
                f" {self.measured_serializing:.4f} vs paper"
                f" ~{self.target_serializing:.4f}",
                "  VP correct on misses:   measured"
                f" {self.measured_vp_correct:.2%} vs paper"
                f" {self.target_vp_correct:.0%}",
                f"  I-misses /100 insts:    {self.measured_imiss_per_100:.3f}",
            ]
        )


def check_calibration(trace, annotated=None):
    """Measure the calibration quantities of *trace* against the paper.

    Returns a :class:`CalibrationReport`.  *annotated* may be passed to
    reuse an existing annotation.
    """
    if trace.name not in PAPER_TARGETS:
        raise ConfigError(f"no calibration targets for workload {trace.name!r}")
    target = PAPER_TARGETS[trace.name]
    ann = annotated or annotate(trace)
    start = ann.measure_start
    measured = len(trace) - start
    stats = compute_stats(trace, dmiss_mask=ann.dmiss, imiss_mask=ann.imiss)

    import numpy as np

    region = slice(start, len(trace))
    dmisses = int(np.count_nonzero(ann.dmiss[region]))
    imisses = int(np.count_nonzero(ann.imiss[region]))
    vp = ann.vp_outcome[region]
    lookups = int(np.count_nonzero(vp >= 0))
    correct = int(np.count_nonzero(vp == 0))

    return CalibrationReport(
        name=trace.name,
        measured_miss_rate=100.0 * dmisses / measured if measured else 0.0,
        target_miss_rate=target.l2_miss_rate_per_100,
        measured_serializing=stats.serializing_fraction,
        target_serializing=target.serializing_fraction,
        measured_vp_correct=correct / lookups if lookups else 0.0,
        target_vp_correct=target.vp_correct,
        measured_imiss_per_100=100.0 * imisses / measured if measured else 0.0,
    )
