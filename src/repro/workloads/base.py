"""Emitter and generator base class for synthetic workloads.

An :class:`Emitter` wraps a :class:`~repro.trace.builder.TraceBuilder`
with a program counter, so generators read like tiny assemblers: each
helper appends one dynamic instruction at the current PC and advances
it, and control transfers move the PC the way the fetch stream would.

A :class:`SyntheticWorkload` repeatedly emits *transactions* until the
requested trace length is reached.  Transactions are the steady-state
unit of all three commercial workloads the paper uses (Section 4.2
notes they are "transaction-oriented and do not exhibit phase changes"),
which is what makes short synthetic traces representative.
"""

import random

from repro.isa.registers import REG_NONE
from repro.trace.builder import TraceBuilder
from repro.robustness.errors import ConfigError


class Emitter:
    """A PC-tracking assembler over a trace builder."""

    def __init__(self, builder, start_pc=0x0040_0000):
        self.builder = builder
        self.pc = start_pc

    def __len__(self):
        return len(self.builder)

    # -- straight-line instructions ---------------------------------------

    def alu(self, dst, src1=REG_NONE, src2=REG_NONE):
        """Append a register computation at the current PC."""
        self.builder.add_alu(self.pc, dst=dst, src1=src1, src2=src2)
        self.pc += 4

    def nop(self):
        """Append a no-operation."""
        self.builder.add_nop(self.pc)
        self.pc += 4

    def load(self, dst, addr, src1=REG_NONE, src2=REG_NONE, value=0):
        """Append a load of *addr* (address regs *src1*/*src2*)."""
        self.builder.add_load(
            self.pc, dst=dst, addr=addr, src1=src1, src2=src2, value=value
        )
        self.pc += 4

    def store(self, addr, data_src, src1=REG_NONE, src2=REG_NONE, value=0):
        """Append a store of register *data_src* to *addr*."""
        self.builder.add_store(
            self.pc, addr=addr, data_src=data_src, src1=src1, src2=src2,
            value=value,
        )
        self.pc += 4

    def prefetch(self, addr, src1=REG_NONE):
        """Append a software prefetch of *addr*."""
        self.builder.add_prefetch(self.pc, addr=addr, src1=src1)
        self.pc += 4

    def cas(self, dst, addr, src1=REG_NONE, data_src=REG_NONE, value=0):
        """Append a compare-and-swap (serializing atomic)."""
        self.builder.add_cas(
            self.pc, dst=dst, addr=addr, src1=src1, data_src=data_src,
            value=value,
        )
        self.pc += 4

    def ldstub(self, dst, addr, src1=REG_NONE, value=0):
        """Append an LDSTUB (serializing atomic)."""
        self.builder.add_ldstub(self.pc, dst=dst, addr=addr, src1=src1,
                                value=value)
        self.pc += 4

    def membar(self):
        """Append a memory barrier."""
        self.builder.add_membar(self.pc)
        self.pc += 4

    # -- control transfers ---------------------------------------------------

    def branch(self, taken, target, src1=REG_NONE, src2=REG_NONE):
        """Conditional branch; moves the PC along the actual path."""
        self.builder.add_branch(
            self.pc, taken=taken, target=target, src1=src1, src2=src2
        )
        self.pc = target if taken else self.pc + 4

    def jump(self, target):
        """Unconditional transfer (always-taken branch)."""
        self.builder.add_branch(self.pc, taken=True, target=target)
        self.pc = target

    def call_block(self, base):
        """Jump to a fixed code block; return the PC to jump back to.

        The synthetic generators keep every dynamic instruction at a
        stable static address (real steady-state code does), expressing
        randomness only through branch outcomes, loop trip counts and
        data addresses.  ``call_block``/``jump(ret)`` is the call/return
        idiom for their fixed *motif blocks*.
        """
        ret = self.pc + 4
        self.jump(base)
        return ret


class SyntheticWorkload:
    """Base class for the synthetic workload generators.

    Subclasses set :attr:`name` and implement :meth:`setup` (build the
    static program: regions, code templates, site models) and
    :meth:`emit_transaction` (append one transaction's dynamic
    instructions).
    """

    name = "synthetic"

    def __init__(self, seed=1234):
        self.seed = seed

    def setup(self, rng):
        """Build per-run static state; called once per :meth:`generate`."""
        raise NotImplementedError

    def emit_transaction(self, em, rng):
        """Emit one transaction at the emitter's current position."""
        raise NotImplementedError

    def generate(self, length):
        """Generate a trace of exactly *length* dynamic instructions.

        Generation is deterministic in ``(seed, length)``: a fresh RNG is
        used for every call.
        """
        if length <= 0:
            raise ConfigError("trace length must be positive")
        rng = random.Random(self.seed)
        self.setup(rng)
        builder = TraceBuilder(name=self.name)
        em = Emitter(builder)
        while len(builder) < length:
            self.emit_transaction(em, rng)
        trace = builder.build()
        if len(trace) > length:
            trace = trace.slice(0, length)
            trace.name = self.name
        return trace
