"""Synthetic SPECweb99-like workload.

Stands in for the paper's web-server benchmark.  Published
characteristics it is calibrated to:

* the lowest L2 load-miss rate of the three (~0.09/100 insts) but
  *extremely* clustered misses (Figure 2): long stretches of fully
  on-chip request processing punctuated by dense bursts when a file
  chunk is pushed through the server;
* a significant number of *useful software prefetches* (the Table 5
  discussion: in-order MLP is highest for SPECweb99 because of them);
* a moderate instruction footprint giving I-miss epoch triggers around
  10-13% of epochs (Figure 5);
* almost no serializing instructions;
* burst misses that are mutually independent (buffer addresses are
  computed from on-chip descriptors), so MLP within a burst is limited
  only by the window — which is why issue configuration E and runahead
  help once whole bursts become reachable.

One transaction = a fixed script: HTTP parsing (hot calls through the
code footprint), a file-cache lookup, and — for a fraction of requests —
a send burst of prefetch+load pairs over consecutive cold lines.
"""

from repro.workloads.base import SyntheticWorkload
from repro.workloads.codegen import CodeFootprint
from repro.workloads.synthesis import BranchSites, RecentPool, Region, ValueSites

_BUF = 8  # current buffer pointer
_CHK = 10  # checksum accumulator
_DESC = 12  # file descriptor fields
_CTR = 5  # loop counters (on-chip)


class SpecWebWorkload(SyntheticWorkload):
    """SPECweb99-style trace generator."""

    name = "specweb99"

    def __init__(self, seed=1234, num_functions=150, body_length=52,
                 calls_per_txn=(5, 11), burst_segments=(2, 6),
                 segment_extra_lines=(0, 2), prefetch_fraction=0.35,
                 burst_probability=0.055, independent_burst_fraction=0.2,
                 cold_lookup_probability=0.08, value_repeat=0.72):
        super().__init__(seed=seed)
        self.num_functions = num_functions
        self.body_length = body_length
        self.calls_per_txn = calls_per_txn
        self.burst_segments = burst_segments
        self.segment_extra_lines = segment_extra_lines
        self.prefetch_fraction = prefetch_fraction
        self.burst_probability = burst_probability
        self.independent_burst_fraction = independent_burst_fraction
        self.cold_lookup_probability = cold_lookup_probability
        self.value_repeat = value_repeat

    def setup(self, rng):
        # ~150 functions x ~230B ≈ 650KB of code: several times the L1I,
        # mostly L2-resident but contended by the file-data stream.
        self.code = CodeFootprint(
            rng,
            num_functions=self.num_functions,
            body_length=self.body_length,
            zipf_exponent=1.0,
            template_pool=48,
        )
        self.hot = Region(0x1000_0000, 16 * 1024)
        self.warm = Region(0x2000_0000, 48 * 1024)  # connection state
        self.files = Region(0x4000_0000, 256 * 1024 * 1024)  # file data
        # Recently-served file descriptors are re-looked-up: these are
        # scattered single accesses, so shrinking the L2 adds *low-MLP*
        # epochs — which is why SPECweb99's MLP moves the opposite way
        # from the other workloads in the Figure 7 sweep.
        self.recent_files = RecentPool(2500)
        self.values = ValueSites(repeat_prob=self.value_repeat)
        self.branches = BranchSites(predictable_fraction=0.9)
        self.context = {
            "hot": self.hot,
            "warm": self.warm,
            "values": self.values,
            "branches": self.branches,
        }
        self.txn_base = 0x0080_0000
        self.burst_base = 0x0081_0100
        self.lookup_base = 0x0082_0200

    # -- motif blocks (fixed PCs) ------------------------------------------

    def _send_burst(self, em, rng):
        """Push one file chunk at the fixed burst block.

        Two kinds of chunk, mirroring a real server's send path:

        * *mbuf chains* (the default): the response is a linked list of
          buffer segments; each segment's header load misses and its
          address comes from the previous header — a dependent chain.
          The segment's extra payload lines are prefetched as soon as
          the header arrives, so each epoch overlaps one header miss
          with the previous segment's payload prefetches.
        * *independent chunks* (``independent_burst_fraction``): a flat
          file-cache copy whose line addresses all come from the on-chip
          descriptor — a fully overlappable cluster, with a software
          prefetch stream covering about half the lines.
        """
        ret = em.call_block(self.burst_base)
        segments = rng.randint(*self.burst_segments)
        independent = rng.random() < self.independent_burst_fraction
        prefetched = rng.random() < self.prefetch_fraction
        em.alu(_BUF, 3, 7)
        head = em.pc
        for k in range(segments):
            em.pc = head
            seg = self.files.next_line(stride_lines=83)
            if independent:
                # Flat copy: the "header" address is on-chip data too.
                em.alu(_BUF, 3, 7)
                em.load(_CHK, seg, src1=_BUF,
                        value=self.values.value(rng, em.pc))
            else:
                em.alu(_CTR, _CTR, 7)
                # Chained: next header address comes from this load.
                em.load(_BUF, seg, src1=_BUF,
                        value=self.values.value(rng, em.pc))
            extra = rng.randint(*self.segment_extra_lines)
            for slot in range(2):
                # Prefetch slots: cover the payload lines ahead of use.
                # Unused slots prefetch hot descriptor lines — a static
                # prefetch instruction always executes.
                em.pc = head + 12 + 4 * slot
                if prefetched and slot < extra:
                    em.prefetch(seg + 64 * (slot + 1), src1=_BUF)
                else:
                    em.prefetch(self.hot.random_addr(rng), src1=2)
            for slot in range(2):
                # Payload copy loads, each consumed immediately (the
                # checksum), so an in-order stall-on-use core stalls at
                # every line while an out-of-order core overlaps them.
                # Short segments copy hot scratch instead.
                em.pc = head + 20 + 8 * slot
                if slot < extra:
                    em.load(_CHK, seg + 64 * (slot + 1), src1=_BUF,
                            value=self.values.value(rng, em.pc))
                else:
                    em.load(_CHK, self.hot.random_addr(rng), src1=2,
                            value=self.values.value(rng, em.pc))
                em.alu(_CHK, _CHK, 1)
            em.pc = head + 36
            em.store(self.warm.random_addr(rng), data_src=_CHK, src1=2)
            em.branch(k + 1 < segments, head, src1=_CTR)
        em.jump(ret)

    def _lookup(self, em, rng):
        """File-cache lookup at the fixed lookup block: warm metadata,
        occasionally reaching a cold descriptor."""
        ret = em.call_block(self.lookup_base)
        em.load(_DESC, self.warm.random_addr(rng), src1=2,
                value=self.values.value(rng, em.pc))
        em.alu(_DESC, _DESC, 1)
        cold = rng.random() < self.cold_lookup_probability
        em.branch(not cold, em.pc + 8, src1=_CTR)
        if cold:
            line = None
            if rng.random() < 0.55:
                line = self.recent_files.sample(rng)
            if line is None:
                line = self.files.next_line(stride_lines=41)
                self.recent_files.insert(line)
            em.load(_DESC, line, src1=_DESC,
                    value=self.values.value(rng, em.pc))
        em.jump(ret)

    # -- transaction driver (fixed script) -----------------------------------

    def emit_transaction(self, em, rng):
        base = self.txn_base
        em.jump(base)

        # Header parsing / connection handling: pure on-chip work.
        calls = rng.randint(*self.calls_per_txn)
        for k in range(calls):
            em.pc = base
            self.code.call(em, rng, self.context)
            em.branch(k + 1 < calls, base, src1=_CTR)  # base+4

        em.pc = base + 8
        self._lookup(em, rng)  # returns to base+12

        send = rng.random() < self.burst_probability
        em.pc = base + 12
        em.branch(not send, base + 20, src1=_CTR)
        if send:
            self._send_burst(em, rng)  # call site base+16, returns base+20
        em.pc = base + 20
        em.alu(_CTR, _CTR, 7)
        # Transaction ends at base+24; the next one jumps from here.
