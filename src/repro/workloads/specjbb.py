"""Synthetic SPECjbb2000-like workload.

Stands in for the paper's middle-tier Java server benchmark.  Published
characteristics it is calibrated to:

* low L2 load-miss rate (~0.19/100 insts) against a multi-megabyte heap;
* a *small* instruction footprint — SPECjbb has no instruction-fetch
  problem (Figure 10: perfect I-prefetch gains nothing);
* CASA object locking at >0.6% of dynamic instructions (Section 3.2.2),
  which makes serializing instructions the dominant MLP inhibitor at
  large windows (Figure 5) and runahead spectacularly effective
  (Figure 8);
* misses that are mostly independent of each other (object field loads
  whose addresses come from on-chip tables), so the MLP headroom is
  real once serialization is removed;
* poor value locality on missing loads (Table 6: 20% last-value
  correct).

One transaction = a fixed script: dispatch calls through a small warm
code base, then a few locked object operations (CASA acquire, field
reads — occasionally cold —, an update, MEMBAR + store release), and
occasionally a young-generation allocation.
"""

from repro.workloads.base import SyntheticWorkload
from repro.workloads.codegen import CodeFootprint
from repro.workloads.synthesis import (
    BranchSites,
    RecentPool,
    Region,
    ValueSites,
)

_OBJ = 8  # object base address register
_FIELD = 10  # loaded fields
_LOCK = 14
_ALLOC = 15
_CTR = 5  # loop counters (on-chip)


class SpecJBBWorkload(SyntheticWorkload):
    """SPECjbb2000-style trace generator."""

    name = "specjbb2000"

    def __init__(self, seed=1234, num_functions=72, body_length=44,
                 calls_per_txn=(8, 16), cold_object_probability=0.7,
                 fields_per_object=(2, 4), objects_per_txn=(1, 3),
                 alloc_probability=0.25, value_repeat=0.88):
        super().__init__(seed=seed)
        self.num_functions = num_functions
        self.body_length = body_length
        self.calls_per_txn = calls_per_txn
        self.cold_object_probability = cold_object_probability
        self.fields_per_object = fields_per_object
        self.objects_per_txn = objects_per_txn
        self.alloc_probability = alloc_probability
        self.value_repeat = value_repeat

    def setup(self, rng):
        # ~72 functions x ~200B ≈ 15KB of code: essentially L1I-resident.
        self.code = CodeFootprint(
            rng,
            num_functions=self.num_functions,
            body_length=self.body_length,
            zipf_exponent=0.9,
        )
        self.hot = Region(0x1000_0000, 12 * 1024)
        self.warm = Region(0x2000_0000, 96 * 1024)  # warm heap / tables
        self.heap = Region(0x4000_0000, 128 * 1024 * 1024)  # old gen
        # Recently-touched old-generation objects are revisited (hot
        # object set): resident in a large L2, evicted from a small one.
        self.recent_objects = RecentPool(2000)
        self.young = Region(0x5000_0000, 64 * 1024 * 1024)  # allocation
        self.locks = Region(0x1100_0000, 8 * 1024)
        self.values = ValueSites(repeat_prob=self.value_repeat)
        self.branches = BranchSites(predictable_fraction=0.88)
        self.context = {
            "hot": self.hot,
            "warm": self.warm,
            "values": self.values,
            "branches": self.branches,
        }
        self.txn_base = 0x0080_0000
        self.object_base = 0x0081_0100
        self.alloc_base = 0x0082_0200

    # -- motif blocks (fixed PCs) ------------------------------------------

    def _object_access(self, em, rng):
        """One locked object operation at the fixed object block.

        The object's address comes from an on-chip table, so the misses
        of *different* objects are independent — but the CASA/MEMBAR
        pair around every operation keeps a conventional machine from
        ever overlapping them.
        """
        ret = em.call_block(self.object_base)
        cold = rng.random() < self.cold_object_probability
        # Object table lookup (hot) and address arithmetic.
        em.load(_OBJ, self.hot.random_addr(rng), src1=1,
                value=self.values.value(rng, em.pc))
        em.alu(_OBJ, _OBJ, 7)
        # Acquire.
        lock_addr = self.locks.random_addr(rng)
        em.alu(_LOCK, 1, 0)
        em.cas(_LOCK, lock_addr, src1=1, data_src=_LOCK, value=0)
        # Field reads: a small burst across the object's lines.
        if cold:
            obj = None
            if rng.random() < 0.45:
                obj = self.recent_objects.sample(rng)
            if obj is None:
                obj = self.heap.next_line(stride_lines=61)
                self.recent_objects.insert(obj)
        else:
            obj = self.warm.line_of(self.warm.random_addr(rng))
        fields = rng.randint(*self.fields_per_object)
        # Large objects occasionally spill onto a second line, which is
        # the only intra-object miss overlap a conventional window sees.
        second_line = fields == 4 and rng.random() < 0.45
        head = em.pc
        for f in range(fields):
            em.pc = head
            offset = 64 if (f == 3 and second_line) else 0
            em.load(_FIELD, obj + offset + 8 * (f % 4), src1=_OBJ,
                    value=self.values.value(rng, em.pc))
            em.alu(_FIELD, _FIELD, 1)
            em.branch(f + 1 < fields, head, src1=_CTR)
        # Business logic on the fetched fields: a branch whose condition
        # depends on the (possibly missing) object data.  When it
        # mispredicts it is unresolvable — the condition the paper's
        # perfect-BP limit study removes (Figure 10).
        branch_site = em.pc
        self.branches.force_bias(branch_site, 0.78)
        taken = self.branches.outcome(rng, branch_site)
        em.branch(taken, branch_site + 12, src1=_FIELD)
        if not taken:
            em.alu(_FIELD, _FIELD, 7)
            em.alu(_FIELD, _FIELD, 1)
        # Update and release.
        em.store(obj + 8, data_src=_FIELD, src1=_OBJ)
        em.membar()
        em.store(lock_addr, data_src=0, src1=1)
        em.jump(ret)

    def _allocate(self, em, rng):
        """Young-generation allocation: sequential stores on fresh lines."""
        ret = em.call_block(self.alloc_base)
        line = self.young.next_line()
        em.alu(_ALLOC, 3, 7)
        words = rng.randint(3, 6)
        head = em.pc
        for w in range(words):
            em.pc = head
            em.store(line + 8 * w, data_src=_ALLOC, src1=_ALLOC)
            em.branch(w + 1 < words, head, src1=_CTR)
        em.jump(ret)

    # -- transaction driver (fixed script) -----------------------------------

    def emit_transaction(self, em, rng):
        base = self.txn_base
        em.jump(base)

        calls = rng.randint(*self.calls_per_txn)
        for k in range(calls):
            em.pc = base
            self.code.call(em, rng, self.context)
            em.branch(k + 1 < calls, base, src1=_CTR)  # base+4

        objects = rng.randint(*self.objects_per_txn)
        for o in range(objects):
            em.pc = base + 8
            self._object_access(em, rng)
            em.branch(o + 1 < objects, base + 8, src1=_CTR)  # base+12

        allocate = rng.random() < self.alloc_probability
        em.pc = base + 16
        em.branch(not allocate, base + 24, src1=_CTR)
        if allocate:
            self._allocate(em, rng)  # call site base+20, returns base+24
        em.pc = base + 24
        em.alu(_CTR, _CTR, 7)
        # Transaction ends at base+28; the next one jumps from here.
