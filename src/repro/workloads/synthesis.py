"""Building blocks shared by the synthetic workload generators.

* :class:`Region` — an address-space region with hot/sequential/random
  allocation helpers.  "Cold" behaviour (guaranteed off-chip misses)
  falls out of touching a region much larger than the L2 with little
  reuse; "hot" behaviour falls out of a region smaller than the L1.
* :class:`ValueSites` — per-static-load value streams with controllable
  last-value repeat probability (drives the Table 6 value-predictor
  accuracies).
* :class:`BranchSites` — per-static-branch outcome bias (drives the
  gshare accuracy and therefore the density of mispredicted branches).
* :class:`ZipfSampler` — skewed choice over functions/objects, giving
  instruction and data streams the heavy reuse plus long tail that makes
  commercial footprints overflow caches gradually rather than all at
  once.
"""

import bisect
import itertools
from repro.robustness.errors import ConfigError


class Region:
    """A contiguous region of the synthetic address space."""

    def __init__(self, base, size, line_bytes=64):
        if base % line_bytes:
            raise ConfigError("region base must be line-aligned")
        self.base = base
        self.size = size
        self.line_bytes = line_bytes
        self._cursor = 0

    @property
    def end(self):
        return self.base + self.size

    @property
    def num_lines(self):
        return self.size // self.line_bytes

    def contains(self, addr):
        """True if *addr* lies inside the region."""
        return self.base <= addr < self.end

    def random_addr(self, rng, align=8):
        """A uniformly random *align*-aligned address inside the region."""
        slots = self.size // align
        return self.base + rng.randrange(slots) * align

    def random_line(self, rng):
        """The base address of a uniformly random line."""
        return self.base + rng.randrange(self.num_lines) * self.line_bytes

    def next_line(self, stride_lines=1):
        """Sequential line allocation with wraparound.

        Cycling through a region much larger than the L2 guarantees the
        returned lines were evicted long ago, i.e. they miss off-chip.
        """
        addr = self.base + self._cursor * self.line_bytes
        self._cursor = (self._cursor + stride_lines) % self.num_lines
        return addr

    def line_of(self, addr):
        """Line-aligned base address containing *addr*."""
        return addr - addr % self.line_bytes


class ZipfRegion:
    """A region whose lines are touched with Zipf-distributed popularity.

    This is what gives the synthetic workloads a *continuous* footprint:
    the popular head of the region stays L2-resident while the long tail
    misses, so enlarging the L2 converts tail accesses into hits — the
    effect Figure 7 sweeps.  Line popularity is scattered across the
    region with a multiplicative hash so cache sets are loaded evenly.
    """

    def __init__(self, base, size, line_bytes=64, exponent=0.75):
        self.region = Region(base, size, line_bytes)
        self.exponent = exponent
        self._sampler = ZipfSampler(self.region.num_lines, exponent=exponent)
        self._scatter = 0x9E3779B1  # Fibonacci-hash multiplier

    @property
    def base(self):
        return self.region.base

    @property
    def size(self):
        return self.region.size

    def sample_line(self, rng):
        """Return the base address of a popularity-sampled line."""
        rank = self._sampler.sample(rng)
        num_lines = self.region.num_lines
        line = (rank * self._scatter) % num_lines
        return self.region.base + line * self.region.line_bytes


class RecentPool:
    """A bounded set of recently used line addresses.

    Commercial workloads re-touch recently used data (row caches, hot
    objects); a ring buffer of the last *capacity* lines models that
    recency.  Lines sampled from the pool have reuse distances bounded
    by the pool size plus the interleaved allocation churn, which is
    what makes them L2-capacity-sensitive at reproduction trace lengths
    (the Figure 7 lever).
    """

    def __init__(self, capacity):
        if capacity <= 0:
            raise ConfigError("RecentPool capacity must be positive")
        self.capacity = capacity
        self._lines = []
        self._cursor = 0

    def __len__(self):
        return len(self._lines)

    def insert(self, line):
        """Remember *line* as recently used."""
        if len(self._lines) < self.capacity:
            self._lines.append(line)
        else:
            self._lines[self._cursor] = line
            self._cursor = (self._cursor + 1) % self.capacity

    def sample(self, rng):
        """Return a uniformly random recent line (None when empty)."""
        if not self._lines:
            return None
        return self._lines[rng.randrange(len(self._lines))]


class ZipfSampler:
    """Zipf-distributed sampling over ``range(n)``.

    Uses the inverse-CDF method over precomputed cumulative weights, so
    sampling is O(log n).  ``exponent`` near 1 gives commercial-code-like
    reuse: a hot head plus a long cold tail.
    """

    def __init__(self, n, exponent=1.0):
        if n <= 0:
            raise ConfigError("ZipfSampler needs at least one item")
        weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]
        self.n = n

    def sample(self, rng):
        """Draw one index."""
        point = rng.random() * self._total
        return bisect.bisect_left(self._cumulative, point)


class ValueSites:
    """Last-value streams for static load sites.

    Each site repeats its previous value with probability
    ``repeat_prob`` and otherwise produces a fresh one.  Running the
    16K-entry last-value predictor (confidence threshold 2) over such a
    stream yields the Correct/Wrong/No-Predict mix the paper reports in
    Table 6, with the mix controlled by ``repeat_prob``.
    """

    def __init__(self, repeat_prob):
        self.repeat_prob = repeat_prob
        self._last = {}
        self._fresh = itertools.count(0x1000_0000, 17)

    def value(self, rng, site):
        """Produce the next value loaded by the static *site*."""
        last = self._last.get(site)
        if last is not None and rng.random() < self.repeat_prob:
            return last
        value = next(self._fresh)
        self._last[site] = value
        return value


class BranchSites:
    """Per-static-branch direction bias.

    A site's bias is assigned on first use: with probability
    ``predictable_fraction`` the branch is strongly biased (taken or
    not-taken with probability ``strong_bias``), otherwise it is weakly
    biased around 0.5 and will defeat gshare about half the time.
    """

    def __init__(self, predictable_fraction=0.85, strong_bias=0.96,
                 weak_bias=0.6):
        self.predictable_fraction = predictable_fraction
        self.strong_bias = strong_bias
        self.weak_bias = weak_bias
        self._bias = {}

    def outcome(self, rng, site):
        """Draw the next dynamic outcome (True = taken) of *site*."""
        bias = self._bias.get(site)
        if bias is None:
            if rng.random() < self.predictable_fraction:
                bias = self.strong_bias if rng.random() < 0.5 else (
                    1.0 - self.strong_bias
                )
            else:
                bias = self.weak_bias if rng.random() < 0.5 else (
                    1.0 - self.weak_bias
                )
            self._bias[site] = bias
        return rng.random() < bias

    def force_bias(self, site, bias):
        """Pin the bias of *site* (used for data-dependent branches)."""
        self._bias[site] = bias
