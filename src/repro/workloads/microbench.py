"""The paper's worked Examples 1-5 as reusable annotated traces.

Section 3 of the paper illustrates the window termination conditions
with five small instruction sequences, listing the exact epoch sets and
(for Examples 1-3) the resulting MLP.  These constructions are shared
by the unit tests (which assert the paper's numbers verbatim) and by
``examples/epoch_model_tour.py``.

Each ``example_n()`` returns an :class:`AnnotatedTrace` whose event
flags (Dmiss / Imiss / Mispred) are placed exactly where the paper
says, via :func:`repro.trace.annotate.manual_annotation`.
"""

from repro.trace.annotate import manual_annotation
from repro.trace.builder import TraceBuilder


def example_1():
    """Example 1: issue window / ROB size (window of 4 terminates at i4).

    Paper epoch sets: {i1, i4}, {i2, i3, i5}; MLP = (1+2)/2 = 1.5.
    Run with ``MachineConfig.named("4C")``.
    """
    b = TraceBuilder("example1")
    b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # i1 Dmiss
    b.add_alu(0x104, dst=4, src1=2, src2=3)  # i2
    b.add_load(0x108, dst=5, addr=0x9000, src1=4)  # i3 Dmiss
    b.add_alu(0x10C, dst=2, src1=0, src2=1)  # i4
    b.add_load(0x110, dst=8, addr=0xA000, src1=7)  # i5 Dmiss
    return manual_annotation(b.build(), dmiss_at=[0, 2, 4])


def example_2():
    """Example 2: a MEMBAR terminates the window.

    Paper epoch sets: {i1, i2}, {i3, i4, i5}; MLP = (1+2)/2 = 1.5.
    """
    b = TraceBuilder("example2")
    b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # i1 Dmiss
    b.add_membar(0x104)  # i2
    b.add_alu(0x108, dst=4, src1=2, src2=3)  # i3
    b.add_load(0x10C, dst=5, addr=0x9000, src1=4)  # i4 Dmiss
    b.add_load(0x110, dst=8, addr=0xA000, src1=7)  # i5 Dmiss
    return manual_annotation(b.build(), dmiss_at=[0, 3, 4])


def example_3():
    """Example 3: Imiss and an unresolvable mispredicted branch.

    Paper epoch sets: {i1, i2*}, {i2, i3}, {i4, i5} (i2 fetched in epoch
    1, executed in epoch 2); MLP = (2+1+1)/3 = 1.33.
    """
    b = TraceBuilder("example3")
    b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # i1 Dmiss
    b.add_alu(0x104, dst=4, src1=2, src2=3)  # i2 Imiss
    b.add_load(0x108, dst=5, addr=0x9000, src1=4)  # i3 Dmiss
    b.add_branch(0x10C, taken=True, target=0x200, src1=5)  # i4 Mispred
    b.add_load(0x200, dst=8, addr=0xA000, src1=7)  # i5 Dmiss
    return manual_annotation(
        b.build(), dmiss_at=[0, 2, 4], imiss_at=[1], mispred_at=[3]
    )


def example_4():
    """Example 4: load issue policies (Section 3.4.1).

    Paper epoch sets: policy 1 (config A) {i1},{i2,i3},{i4,i5};
    policy 2 (B) {i1,i3},{i2},{i4,i5}; policy 3 (C) {i1,i3,i5},{i2},{i4}.
    """
    b = TraceBuilder("example4")
    b.add_load(0x100, dst=2, addr=0x8008, src1=1)  # i1 Dmiss
    b.add_load(0x104, dst=3, addr=0x9000, src1=2)  # i2 Dmiss (dep on i1)
    b.add_load(0x108, dst=4, addr=0x8108, src1=1)  # i3 Dmiss
    b.add_store(0x10C, addr=0x9000, data_src=5, src1=3)  # i4 store 0(r3)
    b.add_load(0x110, dst=6, addr=0x8388, src1=1)  # i5 Dmiss
    return manual_annotation(b.build(), dmiss_at=[0, 1, 2, 4])


def example_5():
    """Example 5: branch issue policies (Section 3.4.2).

    Paper epoch sets: in-order branches {i1},{i2,i3,i4};
    out-of-order branches {i1,i3,i4},{i2}.
    """
    b = TraceBuilder("example5")
    b.add_load(0x100, dst=2, addr=0x8008, src1=1)  # i1 Dmiss
    b.add_branch(0x104, taken=False, target=0x1100, src1=2)  # i2 (dep i1)
    b.add_branch(0x108, taken=False, target=0x11FF, src1=1)  # i3 Mispred
    b.add_load(0x10C, dst=4, addr=0x8108, src1=1)  # i4 Dmiss
    return manual_annotation(b.build(), dmiss_at=[0, 3], mispred_at=[2])


#: All examples, keyed by their paper number.
EXAMPLES = {
    1: example_1,
    2: example_2,
    3: example_3,
    4: example_4,
    5: example_5,
}
