"""A scientific/streaming workload — the paper's *contrast* case.

The paper's introduction distinguishes commercial applications from
"media processing and scientific floating-point intensive applications"
whose regular access patterns conventional techniques already handle.
This generator synthesises that contrast case: a triad-style streaming
kernel (``a[i] = b[i] + s * c[i]``) over arrays far larger than the L2,
plus a small reduction loop.

Its properties are the mirror image of the commercial workloads:

* misses are dense, perfectly sequential and mutually independent —
  a stride prefetcher covers nearly all of them
  (``repro.memory.prefetcher``);
* there are no serializing instructions, no I-misses and almost no
  mispredictions (the loop branches are perfectly biased);
* even a modest out-of-order window exposes large MLP, and in-order
  stall-on-use already overlaps several misses.

It is not one of the paper's benchmarks; it exists so the library can
demonstrate the premise of Section 1 quantitatively (see the
``intro_contrast`` ablation).
"""

from repro.workloads.base import SyntheticWorkload
from repro.workloads.synthesis import BranchSites, Region, ValueSites

_PTR_B = 8  # streaming source pointers
_PTR_C = 9
_ACC = 10  # accumulator / computed element
_SUM = 11  # reduction register
_CTR = 5


class StreamingWorkload(SyntheticWorkload):
    """Triad-style streaming kernel over >L2 arrays."""

    name = "streaming"

    def __init__(self, seed=1234, chunk_iterations=(48, 96),
                 reduction_iterations=(16, 32), compute_per_element=3):
        super().__init__(seed=seed)
        self.chunk_iterations = chunk_iterations
        self.reduction_iterations = reduction_iterations
        self.compute_per_element = compute_per_element

    def setup(self, rng):
        self.hot = Region(0x1000_0000, 8 * 1024)
        self.array_b = Region(0x4000_0000, 256 * 1024 * 1024)
        self.array_c = Region(0x5000_0000, 256 * 1024 * 1024)
        self.array_a = Region(0x6000_0000, 256 * 1024 * 1024)
        self.values = ValueSites(repeat_prob=0.05)  # FP data: no locality
        self.branches = BranchSites()
        self.txn_base = 0x0080_0000
        self.triad_base = 0x0081_0100
        self.reduce_base = 0x0082_0200
        self._b_elem = 0
        self._c_elem = 0
        self._a_elem = 0

    def _triad(self, em, rng):
        """One cache-line-granular triad chunk at fixed PCs.

        Each iteration loads one element of ``b`` and ``c`` and stores
        one of ``a``; elements advance sequentially, so a new line is
        touched every 8 iterations — dense, regular, independent misses.
        """
        ret = em.call_block(self.triad_base)
        iterations = rng.randint(*self.chunk_iterations)
        head = em.pc
        for k in range(iterations):
            em.pc = head
            b_addr = self.array_b.base + 8 * self._b_elem
            c_addr = self.array_c.base + 8 * self._c_elem
            a_addr = self.array_a.base + 8 * self._a_elem
            self._b_elem = (self._b_elem + 1) % (self.array_b.size // 8)
            self._c_elem = (self._c_elem + 1) % (self.array_c.size // 8)
            self._a_elem = (self._a_elem + 1) % (self.array_a.size // 8)
            em.load(_ACC, b_addr, src1=_PTR_B,
                    value=self.values.value(rng, em.pc))
            em.load(_ACC + 1, c_addr, src1=_PTR_C,
                    value=self.values.value(rng, em.pc))
            for _c in range(self.compute_per_element):
                em.alu(_ACC, _ACC, _ACC + 1)
            em.store(a_addr, data_src=_ACC, src1=_PTR_B)
            em.alu(_PTR_B, _PTR_B, 1)
            em.alu(_PTR_C, _PTR_C, 1)
            em.branch(k + 1 < iterations, head, src1=_CTR)
        em.jump(ret)

    def _reduce(self, em, rng):
        """A dependent reduction over hot data (the on-chip phase)."""
        ret = em.call_block(self.reduce_base)
        iterations = rng.randint(*self.reduction_iterations)
        head = em.pc
        for k in range(iterations):
            em.pc = head
            em.load(_ACC, self.hot.random_addr(rng), src1=1,
                    value=self.values.value(rng, em.pc))
            em.alu(_SUM, _SUM, _ACC)
            em.branch(k + 1 < iterations, head, src1=_CTR)
        em.jump(ret)

    def emit_transaction(self, em, rng):
        base = self.txn_base
        em.jump(base)
        em.pc = base
        self._triad(em, rng)  # call site base+0, returns base+4
        em.pc = base + 4
        self._reduce(em, rng)  # call site base+4, returns base+8
        em.pc = base + 8
        em.alu(_CTR, _CTR, 7)
