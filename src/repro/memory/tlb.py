"""Shared translation lookaside buffer.

The paper's default machine has a 2K-entry shared TLB.  TLB misses are
serviced on-chip in this study (the paper never attributes off-chip
traffic to page walks), so the TLB exists for characterisation only: it
counts translation misses but does not create off-chip accesses.
"""

from repro.robustness.errors import ConfigError


class TLB:
    """Fully-associative-by-construction LRU TLB over fixed-size pages.

    A dict preserving insertion order gives O(1) LRU when combined with
    re-insertion on hit; capacity is enforced by evicting the oldest
    entry.
    """

    def __init__(self, entries=2048, page_bytes=8192):
        if page_bytes & (page_bytes - 1):
            raise ConfigError("page size must be a power of two")
        self.entries = entries
        self.page_shift = page_bytes.bit_length() - 1
        self._pages = {}
        self.hits = 0
        self.misses = 0

    def access(self, addr):
        """Translate *addr*: return True on TLB hit."""
        page = addr >> self.page_shift
        pages = self._pages
        if page in pages:
            self.hits += 1
            del pages[page]
            pages[page] = True
            return True
        self.misses += 1
        pages[page] = True
        if len(pages) > self.entries:
            oldest = next(iter(pages))
            del pages[oldest]
        return False

    def reset_stats(self):
        """Zero the hit/miss counters."""
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_ratio(self):
        total = self.accesses
        return self.misses / total if total else 0.0
