"""Memory-hierarchy substrate.

The default hierarchy matches the paper's Section 5.1 configuration:
32KB 4-way L1 instruction and data caches, a 2MB 4-way shared L2 (all
64-byte lines), no L3, and a 2K-entry shared TLB.  A miss in the furthest
on-chip cache (the L2) is a *long-latency off-chip access* — the events
MLP is made of.
"""

from repro.memory.cache import Cache, CacheConfig
from repro.memory.tlb import TLB
from repro.memory.mshr import MSHRFile
from repro.memory.prefetcher import (
    NextLinePrefetcher,
    PrefetchStudy,
    StridePrefetcher,
    run_prefetch_study,
)
from repro.memory.hierarchy import (
    AccessLevel,
    Hierarchy,
    HierarchyConfig,
)

__all__ = [
    "Cache",
    "CacheConfig",
    "TLB",
    "MSHRFile",
    "NextLinePrefetcher",
    "PrefetchStudy",
    "StridePrefetcher",
    "run_prefetch_study",
    "AccessLevel",
    "Hierarchy",
    "HierarchyConfig",
]
