"""The on-chip cache hierarchy of the modeled machine.

Composes L1I + L1D + shared L2 (+ TLB) and classifies every reference by
the furthest level it had to reach.  A reference that misses the L2 is an
*off-chip access* — the unit of MLP.  The hierarchy is shared between the
annotation pipeline (which marks trace instructions with their miss
behaviour) and the cycle-accurate simulator.
"""

import dataclasses
import enum

from repro.memory.cache import Cache, CacheConfig
from repro.memory.tlb import TLB


class AccessLevel(enum.IntEnum):
    """The furthest level a reference had to reach."""

    L1 = 0
    L2 = 1
    OFFCHIP = 2


@dataclasses.dataclass(frozen=True)
class HierarchyConfig:
    """Geometry of the full on-chip hierarchy (paper Section 5.1 defaults)."""

    l1i: CacheConfig = CacheConfig(size_bytes=32 * 1024, associativity=4)
    l1d: CacheConfig = CacheConfig(size_bytes=32 * 1024, associativity=4)
    l2: CacheConfig = CacheConfig(size_bytes=2 * 1024 * 1024, associativity=4)
    tlb_entries: int = 2048

    def with_l2_size(self, size_bytes):
        """Return a copy with the L2 capacity replaced (Figure 7 sweeps)."""
        l2 = CacheConfig(
            size_bytes=size_bytes,
            associativity=self.l2.associativity,
            line_bytes=self.l2.line_bytes,
        )
        return dataclasses.replace(self, l2=l2)

    def cache_key(self):
        """A hashable identity for annotation caching."""
        return (
            self.l1i.size_bytes,
            self.l1i.associativity,
            self.l1d.size_bytes,
            self.l1d.associativity,
            self.l2.size_bytes,
            self.l2.associativity,
            self.l2.line_bytes,
            self.tlb_entries,
        )


class Hierarchy:
    """L1I/L1D/shared-L2 hierarchy with a shared TLB.

    The L2 is shared between instruction and data streams, which is what
    makes the database workload's large instruction footprint steal L2
    capacity from its data — a first-order effect for I-miss epoch
    triggers (Figure 5's ``Imiss start``).
    """

    def __init__(self, config=None):
        self.config = config or HierarchyConfig()
        self.l1i = Cache(self.config.l1i, name="L1I")
        self.l1d = Cache(self.config.l1d, name="L1D")
        self.l2 = Cache(self.config.l2, name="L2")
        self.tlb = TLB(entries=self.config.tlb_entries)
        self.offchip_accesses = 0

    def access_instruction(self, pc):
        """Fetch the line containing *pc*; return the furthest level reached."""
        if self.l1i.access(pc):
            return AccessLevel.L1
        if self.l2.access(pc):
            return AccessLevel.L2
        self.offchip_accesses += 1
        return AccessLevel.OFFCHIP

    def access_data(self, addr, is_write=False):
        """Reference data address *addr*; return the furthest level reached.

        Write misses allocate (write-allocate policy); *is_write* is
        accepted for interface clarity but hits and misses are handled
        identically because writeback traffic is out of scope.
        """
        del is_write  # write-allocate: writes behave like reads for MLP
        self.tlb.access(addr)
        if self.l1d.access(addr):
            return AccessLevel.L1
        if self.l2.access(addr):
            return AccessLevel.L2
        self.offchip_accesses += 1
        return AccessLevel.OFFCHIP

    def probe_data(self, addr):
        """Would a data reference to *addr* stay on chip? (no state change)"""
        return self.l1d.probe(addr) or self.l2.probe(addr)

    def fill_data(self, addr):
        """Install *addr*'s line in L1D and L2 (prefetch completion)."""
        self.l1d.fill(addr)
        self.l2.fill(addr)

    def reset_stats(self):
        """Zero all counters (after warmup)."""
        self.l1i.reset_stats()
        self.l1d.reset_stats()
        self.l2.reset_stats()
        self.tlb.reset_stats()
        self.offchip_accesses = 0
