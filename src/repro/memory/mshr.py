"""Miss-status holding registers for the cycle-accurate simulator.

The MSHR file tracks off-chip accesses in flight, merging requests to the
same line.  The cycle simulator reads its occupancy every cycle to
measure instantaneous MLP, MLP(t), exactly as Section 2.1 prescribes
("the number of useful long-latency off-chip accesses outstanding at
cycle t").
"""

from repro.robustness.errors import InternalError


class MSHRFile:
    """Outstanding off-chip misses, keyed by line address.

    The paper assumes miss-handling resources are never the bottleneck
    (infinite load/store buffers), so capacity defaults to unbounded; a
    finite capacity is supported for sensitivity experiments.
    """

    def __init__(self, line_bytes=64, capacity=None):
        self._line_shift = line_bytes.bit_length() - 1
        self.capacity = capacity
        self._inflight = {}  # line -> completion cycle
        self.allocations = 0
        self.merges = 0

    def line_of(self, addr):
        """Line index of byte address *addr*."""
        return addr >> self._line_shift

    def is_full(self):
        """True when a finite MSHR file has no free entry."""
        return self.capacity is not None and len(self._inflight) >= self.capacity

    def lookup(self, addr):
        """Return the completion cycle of *addr*'s in-flight miss, or None."""
        return self._inflight.get(self.line_of(addr))

    def allocate(self, addr, completion_cycle):
        """Track a new off-chip access completing at *completion_cycle*.

        If the line is already in flight the request merges and the
        existing completion cycle is returned; otherwise the new one is.
        """
        line = self.line_of(addr)
        existing = self._inflight.get(line)
        if existing is not None:
            self.merges += 1
            return existing
        if self.is_full():
            raise InternalError("MSHR file exhausted")
        self._inflight[line] = completion_cycle
        self.allocations += 1
        return completion_cycle

    def retire_complete(self, now):
        """Drop entries whose completion cycle is <= *now*; return lines."""
        done = [line for line, when in self._inflight.items() if when <= now]
        for line in done:
            del self._inflight[line]
        return done

    def outstanding(self):
        """Return the number of distinct off-chip accesses in flight."""
        return len(self._inflight)

    def next_completion(self):
        """Return the earliest completion cycle in flight, or None."""
        if not self._inflight:
            return None
        return min(self._inflight.values())

    def clear(self):
        """Drop every in-flight entry."""
        self._inflight.clear()
