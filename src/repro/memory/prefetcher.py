"""Conventional hardware prefetchers, and a study harness for them.

The paper's introduction argues that commercial workloads "exhibit
control- and data-dependent irregular patterns in their memory accesses
that are not amenable to conventional hardware or software prefetching"
— which is the premise that makes MLP the interesting lever.  This
module implements the two standard hardware prefetchers (next-N-line
and PC-indexed stride) and a replay harness that measures their
coverage and accuracy on any trace, so the premise can be checked
rather than assumed.
"""

import dataclasses

from repro.isa.opclass import OpClass
from repro.memory.hierarchy import AccessLevel, Hierarchy
from repro.robustness.errors import ConfigError


class NextLinePrefetcher:
    """On a demand miss, prefetch the next *degree* sequential lines."""

    def __init__(self, degree=2, line_bytes=64):
        if degree <= 0:
            raise ConfigError("prefetch degree must be positive")
        self.degree = degree
        self.line_bytes = line_bytes

    def observe(self, pc, addr, was_miss):
        """Return the addresses to prefetch after this demand access."""
        del pc
        if not was_miss:
            return ()
        line = addr - addr % self.line_bytes
        return tuple(
            line + self.line_bytes * (k + 1) for k in range(self.degree)
        )


class StridePrefetcher:
    """Classic PC-indexed reference-prediction-table stride prefetcher.

    Each static load site tracks its last address and last stride with a
    2-bit confidence counter; once the same stride repeats, the next
    *degree* strided addresses are prefetched.
    """

    def __init__(self, entries=1024, degree=2, threshold=2):
        if entries & (entries - 1):
            raise ConfigError("table size must be a power of two")
        self.entries = entries
        self.degree = degree
        self.threshold = threshold
        self._mask = entries - 1
        self._table = {}  # index -> [tag, last_addr, stride, confidence]

    def observe(self, pc, addr, was_miss):
        """Train on an access; return strided prefetch candidates."""
        del was_miss  # stride training uses every access
        word = pc >> 2
        index = word & self._mask
        tag = word >> self.entries.bit_length()
        entry = self._table.get(index)
        if entry is None or entry[0] != tag:
            self._table[index] = [tag, addr, 0, 0]
            return ()
        stride = addr - entry[1]
        if stride != 0 and stride == entry[2]:
            if entry[3] < 3:
                entry[3] += 1
        else:
            entry[2] = stride
            entry[3] = 0
        entry[1] = addr
        if entry[3] >= self.threshold and entry[2] != 0:
            return tuple(
                addr + entry[2] * (k + 1) for k in range(self.degree)
            )
        return ()


class _NoPrefetcher:
    """Reference prefetcher that never prefetches."""

    def observe(self, pc, addr, was_miss):
        del pc, addr, was_miss
        return ()


@dataclasses.dataclass
class PrefetchStudy:
    """Coverage/accuracy of a hardware prefetcher on one trace."""

    workload: str
    prefetcher: str
    baseline_misses: int
    remaining_misses: int
    covered_misses: int
    issued: int
    useful: int

    @property
    def coverage(self):
        """Fraction of would-be off-chip load misses removed."""
        if not self.baseline_misses:
            return 0.0
        return self.covered_misses / self.baseline_misses

    @property
    def accuracy(self):
        """Fraction of issued prefetches whose line was demanded."""
        if not self.issued:
            return 0.0
        return self.useful / self.issued

    def summary(self):
        """One-line coverage/accuracy rendering."""
        return (
            f"{self.workload:<12} {self.prefetcher:<9}"
            f" coverage={self.coverage:6.1%}  accuracy={self.accuracy:6.1%}"
            f"  ({self.issued} prefetches for"
            f" {self.baseline_misses} baseline misses)"
        )


def run_prefetch_study(trace, prefetcher, name=None, hierarchy_config=None):
    """Replay *trace*'s data accesses with *prefetcher* filling the caches.

    Measures how many of the trace's off-chip load misses the prefetcher
    covers and how many of its prefetches were ever used — the paper's
    "not amenable to conventional prefetching" premise, quantified.
    Instruction fetches and the measured/warmup split follow the
    annotation pipeline's conventions (warmup is the first third).

    Pass ``prefetcher=None`` to measure the no-prefetch reference (the
    ``remaining_misses`` of that run is the true demand-miss count;
    in-situ ``baseline_misses`` of a prefetching run additionally
    reflects cache pollution by the prefetches themselves).
    """
    if prefetcher is None:
        prefetcher = _NoPrefetcher()
    hierarchy = Hierarchy(hierarchy_config)
    line_shift = hierarchy.config.l2.line_shift
    offchip = AccessLevel.OFFCHIP

    ops = trace.op.tolist()
    pcs = trace.pc.tolist()
    addrs = trace.addr.tolist()

    LOAD = int(OpClass.LOAD)
    STORE = int(OpClass.STORE)
    CAS = int(OpClass.CAS)
    LDSTUB = int(OpClass.LDSTUB)
    load_like = {LOAD, CAS, LDSTUB}

    measure_start = len(trace) // 3
    prefetched = {}  # line -> still-unused prefetch
    baseline = remaining = covered = issued = useful = 0
    previous_fetch_line = None

    for i in range(len(trace)):
        pc = pcs[i]
        fetch_line = pc >> line_shift
        if fetch_line != previous_fetch_line:
            hierarchy.access_instruction(pc)
            previous_fetch_line = fetch_line

        op = ops[i]
        if op not in load_like and op != STORE:
            continue
        addr = addrs[i]
        line = addr >> line_shift
        was_prefetched = prefetched.pop(line, None) is not None
        level = hierarchy.access_data(addr, is_write=op == STORE)
        miss = level == offchip
        if was_prefetched and i >= measure_start:
            useful += 1
        if op in load_like and i >= measure_start:
            if miss:
                baseline += 1
                remaining += 1
            elif was_prefetched:
                baseline += 1
                covered += 1
        for candidate in prefetcher.observe(pc, addr, miss):
            if candidate < 0 or hierarchy.probe_data(candidate):
                continue
            hierarchy.fill_data(candidate)
            if i >= measure_start:
                prefetched[candidate >> line_shift] = True
                issued += 1
            else:
                prefetched.pop(candidate >> line_shift, None)

    return PrefetchStudy(
        workload=name or trace.name,
        prefetcher=type(prefetcher).__name__,
        baseline_misses=baseline,
        remaining_misses=remaining,
        covered_misses=covered,
        issued=issued,
        useful=useful,
    )
