"""Set-associative cache with true-LRU replacement.

This is the only cache model the reproduction needs: the paper's
hierarchy is write-allocate and the MLP study cares solely about *which*
accesses leave the chip, not about writeback traffic or coherence.  Each
set maps resident lines to the per-set age at which they were last
touched; the LRU victim is the minimum-age line.  A hit is then one
dict store instead of the ``list.remove`` + ``insert`` shuffle of the
earlier MRU-ordered-list representation, while eviction order is
provably identical: recency-of-last-touch is exactly what the ordered
list encoded (``tests/test_memory.py`` pins this against a reference
MRU-list model).
"""

import dataclasses
from repro.robustness.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    associativity: int
    line_bytes: int = 64

    def __post_init__(self):
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigError("line size must be a power of two")
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ConfigError(
                "cache size must be a multiple of associativity * line size"
            )
        num_sets = self.size_bytes // (self.associativity * self.line_bytes)
        if num_sets & (num_sets - 1):
            raise ConfigError("number of sets must be a power of two")

    @property
    def num_sets(self):
        return self.size_bytes // (self.associativity * self.line_bytes)

    @property
    def line_shift(self):
        return self.line_bytes.bit_length() - 1


class Cache:
    """One level of set-associative, true-LRU cache.

    Addresses are byte addresses; the cache operates on line granularity.
    """

    def __init__(self, config, name="cache"):
        self.config = config
        self.name = name
        self._line_shift = config.line_shift
        self._set_mask = config.num_sets - 1
        # line -> age of last touch, one dict and one monotonically
        # increasing age counter per set.
        self._sets = [{} for _ in range(config.num_sets)]
        self._ages = [0] * config.num_sets
        self._assoc = config.associativity
        self.hits = 0
        self.misses = 0

    def _index(self, addr):
        line = addr >> self._line_shift
        return line & self._set_mask, line

    def _touch(self, set_index, ways, line):
        """Stamp *line* as most recently used; evict the LRU overflow."""
        age = self._ages[set_index]
        self._ages[set_index] = age + 1
        ways[line] = age
        if len(ways) > self._assoc:
            del ways[min(ways, key=ways.get)]

    def access(self, addr):
        """Access *addr*: return True on hit; allocate the line on a miss."""
        set_index, line = self._index(addr)
        ways = self._sets[set_index]
        hit = line in ways
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        self._touch(set_index, ways, line)
        return hit

    def probe(self, addr):
        """Return True if *addr*'s line is resident (no state change)."""
        set_index, line = self._index(addr)
        return line in self._sets[set_index]

    def fill(self, addr):
        """Install *addr*'s line (e.g. a prefetch fill) as MRU."""
        set_index, line = self._index(addr)
        self._touch(set_index, self._sets[set_index], line)

    def invalidate(self, addr):
        """Drop *addr*'s line if resident; return True if it was."""
        set_index, line = self._index(addr)
        return self._sets[set_index].pop(line, None) is not None

    def reset_stats(self):
        """Zero the hit/miss counters (e.g. after cache warmup)."""
        self.hits = 0
        self.misses = 0

    def flush(self):
        """Empty the cache entirely."""
        for ways in self._sets:
            ways.clear()

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_ratio(self):
        total = self.accesses
        return self.misses / total if total else 0.0

    def occupancy(self):
        """Return the number of resident lines (for tests/diagnostics)."""
        return sum(len(ways) for ways in self._sets)

    def __repr__(self):
        cfg = self.config
        return (
            f"Cache({self.name}: {cfg.size_bytes // 1024}KB,"
            f" {cfg.associativity}-way, {cfg.line_bytes}B lines,"
            f" {self.hits} hits / {self.misses} misses)"
        )
