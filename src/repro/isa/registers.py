"""Register-file conventions of the abstract ISA.

We model a flat file of 64 integer registers in the SPARC spirit:
register 0 behaves like SPARC's ``%g0`` — it always reads as zero and is
therefore *always available*; writes to it are discarded.  Floating-point
state is folded into the same file because MLP only cares about
dependence structure, not operand types.
"""

from repro.robustness.errors import TraceFormatError

#: Total number of architectural registers.
NUM_REGS = 64

#: Sentinel for "no register" in an operand slot.
REG_NONE = -1

#: The hard-wired zero register (reads never create a dependence).
REG_ZERO = 0

_GROUPS = ("g", "o", "l", "i", "f", "x", "y", "z")


class RegisterNames:
    """SPARC-flavoured display names for the flat register file.

    Registers 0-31 are named ``%g0-%g7, %o0-%o7, %l0-%l7, %i0-%i7`` as in
    SPARC; registers 32-63 get synthetic group names.  This exists purely
    for trace dumps and debugging output.
    """

    @staticmethod
    def name(reg):
        """Return the display name of register index *reg*."""
        return register_name(reg)

    @staticmethod
    def all_names():
        """Return the display names of every register, in index order."""
        return [register_name(r) for r in range(NUM_REGS)]


def register_name(reg):
    """Return a SPARC-flavoured display name for register index *reg*.

    >>> register_name(0)
    '%g0'
    >>> register_name(9)
    '%o1'
    >>> register_name(-1)
    '--'
    """
    if reg == REG_NONE:
        return "--"
    if not 0 <= reg < NUM_REGS:
        raise TraceFormatError(f"register index out of range: {reg}")
    group, offset = divmod(reg, 8)
    return f"%{_GROUPS[group]}{offset}"
