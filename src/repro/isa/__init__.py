"""Abstract SPARC-flavoured ISA used by the trace infrastructure.

The epoch model (and therefore MLPsim) consumes only the aspects of an
instruction that affect memory-level parallelism: its class, its register
dependences, the memory address it touches, and its control-flow
behaviour.  This package defines that abstract instruction record and the
register-file conventions shared by the workload generators, the
annotation pipeline and both simulators.
"""

from repro.isa.opclass import (
    OpClass,
    MEMORY_OPS,
    SERIALIZING_OPS,
    is_branch,
    is_load_like,
    is_memory,
    is_serializing,
    is_store_like,
)
from repro.isa.registers import (
    NUM_REGS,
    REG_NONE,
    REG_ZERO,
    RegisterNames,
    register_name,
)
from repro.isa.instruction import Instruction

__all__ = [
    "OpClass",
    "MEMORY_OPS",
    "SERIALIZING_OPS",
    "is_branch",
    "is_load_like",
    "is_memory",
    "is_serializing",
    "is_store_like",
    "NUM_REGS",
    "REG_NONE",
    "REG_ZERO",
    "RegisterNames",
    "register_name",
    "Instruction",
]
