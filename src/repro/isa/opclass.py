"""Instruction classes of the abstract ISA.

The classes mirror the instruction categories the paper reasons about in
Section 3: ordinary computation, loads, stores, branches, software
prefetches, and the SPARC serializing instructions (CASA, LDSTUB and
MEMBAR) whose straightforward implementation drains the pipeline.
"""

import enum


class OpClass(enum.IntEnum):
    """Instruction class of a dynamic instruction.

    The numeric values are part of the on-disk trace format and must not
    be reordered.
    """

    ALU = 0
    """Register-to-register computation (arithmetic, logic, moves)."""

    LOAD = 1
    """Memory read into a destination register."""

    STORE = 2
    """Memory write; sources an address and a data register."""

    BRANCH = 3
    """Conditional or unconditional control transfer."""

    PREFETCH = 4
    """Software prefetch: brings a line toward the core, never stalls."""

    CAS = 5
    """Compare-and-swap (SPARC ``CASA``): an atomic, serializing."""

    LDSTUB = 6
    """Load-store-unsigned-byte atomic (SPARC ``LDSTUB``): serializing."""

    MEMBAR = 7
    """Explicit memory barrier (SPARC ``MEMBAR``): serializing."""

    NOP = 8
    """No-operation; occupies fetch/window slots but has no effects."""


#: Classes whose execution touches data memory.
MEMORY_OPS = frozenset(
    {OpClass.LOAD, OpClass.STORE, OpClass.PREFETCH, OpClass.CAS, OpClass.LDSTUB}
)

#: Classes that serialize the pipeline in a straightforward implementation
#: (Section 3.2.2 of the paper).
SERIALIZING_OPS = frozenset({OpClass.CAS, OpClass.LDSTUB, OpClass.MEMBAR})

#: Classes that read data memory (may produce an off-chip data access).
_LOAD_LIKE = frozenset({OpClass.LOAD, OpClass.CAS, OpClass.LDSTUB})

#: Classes that write data memory.
_STORE_LIKE = frozenset({OpClass.STORE, OpClass.CAS, OpClass.LDSTUB})


def is_memory(op):
    """Return True if *op* accesses data memory."""
    return op in MEMORY_OPS


def is_serializing(op):
    """Return True if *op* is a serializing instruction (CASA etc.)."""
    return op in SERIALIZING_OPS


def is_load_like(op):
    """Return True if *op* reads data memory (loads and atomics)."""
    return op in _LOAD_LIKE


def is_store_like(op):
    """Return True if *op* writes data memory (stores and atomics)."""
    return op in _STORE_LIKE


def is_branch(op):
    """Return True if *op* is a control transfer."""
    return op == OpClass.BRANCH
