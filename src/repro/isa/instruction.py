"""The dynamic instruction record.

An :class:`Instruction` is one entry of a dynamic instruction stream
(DIS).  It carries exactly the information the epoch model needs:

* ``op`` — the instruction class (:class:`repro.isa.opclass.OpClass`);
* ``pc`` — the fetch address (drives I-cache behaviour);
* ``dst`` — destination register, or ``REG_NONE``;
* ``src1, src2`` — source registers.  For memory operations these are the
  *address* sources; for ALU/branch instructions they are data sources;
* ``src3`` — the *data* source of a store-like instruction (distinct from
  the address sources because issue configuration B of Table 2 waits only
  for earlier store *addresses* to resolve);
* ``addr`` — effective data address for memory operations;
* ``taken``/``target`` — branch outcome and destination;
* ``value`` — for load-like instructions, the value read (feeds the
  last-value predictor of Section 5.5); for stores, the value written.
"""

import dataclasses

from repro.isa.opclass import (
    OpClass,
    is_branch,
    is_load_like,
    is_memory,
    is_serializing,
    is_store_like,
)
from repro.isa.registers import REG_NONE, REG_ZERO, register_name
from repro.robustness.errors import TraceFormatError


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One dynamic instruction of a trace."""

    op: OpClass
    pc: int
    dst: int = REG_NONE
    src1: int = REG_NONE
    src2: int = REG_NONE
    src3: int = REG_NONE
    addr: int = 0
    taken: bool = False
    target: int = 0
    value: int = 0

    def __post_init__(self):
        if self.op == OpClass.PREFETCH and self.dst != REG_NONE:
            raise TraceFormatError("prefetches must not write a register")
        if self.src3 != REG_NONE and not is_store_like(self.op):
            raise TraceFormatError("src3 (store data) is only valid on store-like ops")

    # -- classification helpers -------------------------------------------

    @property
    def is_memory(self):
        """True if this instruction accesses data memory."""
        return is_memory(self.op)

    @property
    def is_load_like(self):
        """True if this instruction reads data memory."""
        return is_load_like(self.op)

    @property
    def is_store_like(self):
        """True if this instruction writes data memory."""
        return is_store_like(self.op)

    @property
    def is_branch(self):
        """True if this instruction is a control transfer."""
        return is_branch(self.op)

    @property
    def is_serializing(self):
        """True if this instruction serializes the pipeline."""
        return is_serializing(self.op)

    @property
    def is_prefetch(self):
        """True if this instruction is a software prefetch."""
        return self.op == OpClass.PREFETCH

    # -- dependence helpers ------------------------------------------------

    def sources(self):
        """Return the register sources that create true dependences.

        The hard-wired zero register and empty operand slots are excluded
        because they never delay execution.
        """
        return tuple(
            r
            for r in (self.src1, self.src2, self.src3)
            if r != REG_NONE and r != REG_ZERO
        )

    def address_sources(self):
        """Return the registers the effective address depends on.

        Only meaningful for memory operations; empty otherwise.
        """
        if not self.is_memory:
            return ()
        return tuple(
            r for r in (self.src1, self.src2) if r != REG_NONE and r != REG_ZERO
        )

    def writes_register(self):
        """Return True if this instruction produces a register result."""
        return self.dst != REG_NONE and self.dst != REG_ZERO

    # -- display -------------------------------------------------------------

    def disassemble(self):
        """Return a human-readable one-line rendering of the instruction."""
        name = self.op.name.lower()
        if self.op == OpClass.LOAD:
            return (
                f"{name} [{register_name(self.src1)}+{self.addr & 0xFFF:#x}]"
                f" -> {register_name(self.dst)}"
            )
        if self.op == OpClass.STORE:
            return (
                f"{name} {register_name(self.src3)} ->"
                f" [{register_name(self.src1)}+{self.addr & 0xFFF:#x}]"
            )
        if self.op == OpClass.BRANCH:
            arrow = "taken" if self.taken else "not-taken"
            return f"{name} {register_name(self.src1)}, {self.target:#x} ({arrow})"
        if self.op == OpClass.PREFETCH:
            return f"{name} [{self.addr:#x}]"
        if self.is_serializing:
            return name
        return (
            f"{name} {register_name(self.src1)},{register_name(self.src2)}"
            f" -> {register_name(self.dst)}"
        )

    def __str__(self):
        return f"{self.pc:#010x}: {self.disassemble()}"
