"""Miss-clustering analysis (paper Section 2.3 / Figure 2).

The paper plots, per workload, the cumulative probability of
encountering another off-chip access within *k* dynamic instructions,
against the same curve under a uniform (memoryless) inter-miss
distribution with the observed mean.  The observed curves rise far
faster — misses are clustered — which is what makes MLP exploitable at
all despite mean inter-miss distances of hundreds of instructions.
"""

import dataclasses

import numpy as np

from repro.trace.stats import intermiss_distances


@dataclasses.dataclass(frozen=True)
class ClusteringCurves:
    """Observed-vs-uniform cumulative inter-miss distributions."""

    workload: str
    distances: np.ndarray  # evaluation points (dynamic instructions)
    observed: np.ndarray  # P(next miss within distance), measured
    uniform: np.ndarray  # same under a memoryless model
    mean_distance: float

    def divergence(self):
        """Max vertical gap between observed and uniform curves.

        A Kolmogorov-Smirnov-style summary of how clustered the misses
        are; ~0 for memoryless misses.
        """
        return float(np.max(np.abs(self.observed - self.uniform)))

    def format(self, points=(8, 16, 32, 64, 128, 256, 512, 1024)):
        """Render observed-vs-uniform probabilities at sample distances."""
        lines = [
            f"{self.workload}: mean inter-miss distance"
            f" {self.mean_distance:.0f} insts"
        ]
        for p in points:
            idx = int(np.searchsorted(self.distances, p))
            idx = min(idx, len(self.distances) - 1)
            lines.append(
                f"  within {p:>5} insts: observed"
                f" {self.observed[idx]:6.1%}  uniform {self.uniform[idx]:6.1%}"
            )
        return "\n".join(lines)


def cumulative_intermiss_distribution(miss_indices, distances):
    """Empirical CDF of inter-miss distances at the given *distances*."""
    gaps = intermiss_distances(miss_indices)
    if len(gaps) == 0:
        return np.zeros(len(distances))
    gaps = np.sort(gaps)
    positions = np.searchsorted(gaps, np.asarray(distances), side="right")
    return positions / len(gaps)


def uniform_intermiss_distribution(mean_distance, distances):
    """CDF under a memoryless model with the same mean distance.

    With misses falling independently at rate ``1/mean`` per
    instruction, the inter-miss distance is geometric:
    ``P(d <= k) = 1 - (1 - 1/mean)**k``.
    """
    if mean_distance <= 1.0:
        return np.ones(len(distances))
    rate = 1.0 / mean_distance
    return 1.0 - np.power(1.0 - rate, np.asarray(distances, dtype=float))


def clustering_curves(annotated, num_points=64, max_distance=100_000,
                      workload=None):
    """Compute Figure 2's curves for one annotated trace.

    Misses are the useful off-chip accesses of the measured region.
    """
    start, stop = annotated.measured_region()
    mask = np.asarray(annotated.offchip_mask[start:stop])
    miss_indices = np.nonzero(mask)[0]
    gaps = intermiss_distances(miss_indices)
    mean_distance = float(gaps.mean()) if len(gaps) else float("inf")
    distances = np.unique(
        np.logspace(0, np.log10(max_distance), num=num_points).astype(np.int64)
    )
    observed = cumulative_intermiss_distribution(miss_indices, distances)
    uniform = uniform_intermiss_distribution(mean_distance, distances)
    return ClusteringCurves(
        workload=workload or annotated.trace.name,
        distances=distances,
        observed=observed,
        uniform=uniform,
        mean_distance=mean_distance,
    )
