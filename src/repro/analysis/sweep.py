"""Parameter-sweep harness over MLPsim.

The paper's Figures 4-10 are all sweeps of machine configurations over
the same annotated traces.  :func:`sweep` runs a labelled grid of
machines and collects the results in a :class:`SweepResult` that the
experiment modules index and render.

Sweeps are embarrassingly parallel: every ``(label, machine)`` pair is
an independent simulation of the same trace.  Passing ``jobs=N`` (or
setting ``REPRO_JOBS``) runs them on a process pool via
:mod:`repro.analysis.parallel`; results are identical to the serial
backend, label for label.  See ``docs/PERFORMANCE.md``.

Long or failure-prone campaigns should run under supervision
(``supervise=...``): the sweep is then journalled, resumable after a
crash, retried per-config with backoff, and fail-soft — see
:mod:`repro.robustness.supervisor` and ``docs/ROBUSTNESS.md``.
"""

import dataclasses

from repro.core.mlpsim import simulate
from repro.robustness.errors import ConfigError, SimulationError

#: Engines ``sweep`` can route a grid through.
ENGINES = ("auto", "batched", "scalar")


@dataclasses.dataclass
class SweepResult:
    """Results of one machine grid over one annotated trace."""

    workload: str
    results: dict  # label -> MLPResult

    def mlp(self, label):
        """MLP of the configuration named *label*."""
        return self.results[label].mlp

    def labels(self):
        """Configuration labels, in grid order."""
        return list(self.results)

    def series(self, labels=None):
        """Return [(label, mlp)] for plotting/printing."""
        labels = labels if labels is not None else self.labels()
        return [(label, self.results[label].mlp) for label in labels]

    def relative(self, baseline_label):
        """MLP of each config relative to *baseline_label* (1.0 = equal).

        Raises
        ------
        repro.robustness.errors.SimulationError
            If the baseline configuration measured zero MLP — every
            ratio would be undefined, and mapping them all to ``0.0``
            would silently hide the degenerate baseline.
        """
        base = self.mlp(baseline_label)
        if not base:
            raise SimulationError(
                f"baseline config {baseline_label!r} has zero MLP;"
                " relative comparison is undefined",
                field=baseline_label,
            )
        return {
            label: result.mlp / base
            for label, result in self.results.items()
        }


def _batched_usable(pairs):
    """Can the batched engine accept this grid at all?

    A grid with a non-``MachineConfig`` entry (tests inject stand-ins
    to exercise failure paths) routes to the scalar backends, whose
    error contract such tests pin down.
    """
    from repro.core.config import MachineConfig

    return all(
        isinstance(machine, MachineConfig) for _, machine in pairs
    )


def _sweep_batched(annotated, pairs, name, progress, n_jobs):
    """Batched-engine sweep: serial-cutover or zero-copy parallel."""
    from repro.analysis.parallel import (
        batched_parallel_sweep,
        serial_cutover,
    )
    from repro.core.batched import simulate_batch

    if not serial_cutover(n_jobs, len(pairs)):
        results = batched_parallel_sweep(
            annotated, pairs, name, progress, min(n_jobs, len(pairs))
        )
        if results is not None:
            return SweepResult(workload=name, results=results)

    results = simulate_batch(annotated, pairs, workload=name)
    if progress is not None:
        for label in results:
            progress(label)
    return SweepResult(workload=name, results=results)


def sweep(annotated, machines, workload=None, progress=None, jobs=None,
          supervise=None, engine="auto"):
    """Run MLPsim for every ``(label, machine)`` pair in *machines*.

    *machines* is an iterable of pairs (an ordered mapping also works).
    *progress*, if given, is called with each label as it completes —
    the benchmark harness uses it for liveness output.

    *jobs* selects the number of worker processes: ``None`` defers to
    the ``REPRO_JOBS`` environment variable (defaulting to serial),
    ``1`` forces the serial backend, ``0`` means one worker per CPU.
    Parallel runs produce results identical to serial ones and preserve
    label order in both the result dict and the progress callbacks; if
    no worker pool can be created the sweep silently runs serially.
    An automatic serial cutover (see
    :func:`repro.analysis.parallel.serial_cutover`) keeps ``jobs=N``
    from ever paying pool overhead a grid cannot amortise — on a
    single-core machine or a tiny grid, ``jobs=4`` simply runs the
    serial backend.

    *engine* picks the simulation backend: ``"auto"`` (default) routes
    the grid through the config-batched columnar engine
    (:mod:`repro.core.batched`) — bit-identical to the scalar engine
    and roughly an order of magnitude faster on full grids — falling
    back per-config to the scalar engine for machines outside the
    batched envelope; ``"batched"`` does the same (it is the explicit
    spelling); ``"scalar"`` forces the one-instruction-at-a-time
    interpreter everywhere.

    *supervise* routes the sweep through the crash-safe supervisor
    (:func:`repro.robustness.supervisor.supervised_sweep`): pass
    ``True`` for default supervision or a dict of supervisor keyword
    arguments (``journal_path``, ``resume``, ``policy``, ``seed``,
    ``trace_len``, ``fault_plan``).  The return value is then a
    :class:`~repro.robustness.supervisor.SupervisedSweepResult` — a
    :class:`SweepResult` whose ``quarantined`` list carries any
    dead-lettered configurations instead of raising.  Supervised
    sweeps always use the scalar engine: per-config isolation is the
    point of supervision, and batching configs into one kernel call
    would couple their failure domains.
    """
    if engine not in ENGINES:
        raise ConfigError(
            f"engine must be one of {ENGINES}, got {engine!r}",
            field="engine",
        )
    if hasattr(machines, "items"):
        machines = machines.items()
    pairs = list(machines)
    name = workload or annotated.trace.name

    if supervise is not None and supervise is not False:
        from repro.robustness.supervisor import supervised_sweep

        options = {} if supervise is True else dict(supervise)
        return supervised_sweep(
            annotated, pairs, workload=name, jobs=jobs,
            progress=progress, **options
        )

    from repro.analysis.parallel import (
        parallel_sweep_results,
        resolve_jobs,
        serial_cutover,
        serial_sweep_results,
    )

    n_jobs = resolve_jobs(jobs)

    if engine != "scalar" and pairs and _batched_usable(pairs):
        return _sweep_batched(annotated, pairs, name, progress, n_jobs)

    if n_jobs > 1 and len(pairs) > 1:
        if serial_cutover(n_jobs, len(pairs)):
            results = serial_sweep_results(annotated, pairs, name, progress)
            return SweepResult(workload=name, results=results)
        results = parallel_sweep_results(
            annotated, pairs, name, progress, min(n_jobs, len(pairs))
        )
        if results is not None:
            return SweepResult(workload=name, results=results)

    results = {}
    for label, machine in pairs:
        results[label] = simulate(annotated, machine, workload=name)
        if progress is not None:
            progress(label)
    return SweepResult(workload=name, results=results)


def sweep_cyclesim(annotated, configs, workload=None, progress=None,
                   jobs=None, supervise=None):
    """Run the cycle simulator for every ``(label, config)`` pair.

    The cyclesim twin of :func:`sweep`: *configs* is an iterable of
    ``(label, CycleSimConfig)`` pairs (or an ordered mapping), and the
    result is a :class:`SweepResult` whose ``results`` map labels to
    :class:`~repro.cyclesim.metrics.CycleMetrics`.  This is how the
    Table 1/3/4 exhibits fan their 27-config-per-workload grids out.

    The grid shares one :class:`~repro.cyclesim.plan.CyclePlan` — the
    cycle simulator's event masks never depend on the configuration —
    so parallel runs publish the per-instruction tables once through
    shared memory and workers attach zero-copy
    (:func:`repro.analysis.parallel.cyclesim_parallel_sweep`).  *jobs*
    and the serial cutover behave exactly as in :func:`sweep`; serial
    runs still amortise the plan and the compiled kernel across the
    grid via :func:`repro.cyclesim.simulator.run_cycle_pairs`.

    *supervise* routes the grid through the same crash-safe supervisor
    MLPsim sweeps use — journalled, resumable, retried, quarantined —
    returning a ``SupervisedSweepResult``; cyclesim results round-trip
    the journal exactly (``kind: "cyclesim"`` payloads).
    """
    if hasattr(configs, "items"):
        configs = configs.items()
    pairs = list(configs)
    name = workload or annotated.trace.name

    if supervise is not None and supervise is not False:
        from repro.robustness.supervisor import supervised_sweep

        options = {} if supervise is True else dict(supervise)
        return supervised_sweep(
            annotated, pairs, workload=name, jobs=jobs,
            progress=progress, **options
        )

    from repro.analysis.parallel import (
        cyclesim_parallel_sweep,
        resolve_jobs,
        serial_cutover,
    )
    from repro.cyclesim.plan import cycle_plan_for
    from repro.cyclesim.simulator import run_cycle_pairs

    n_jobs = resolve_jobs(jobs)

    if pairs and n_jobs > 1 and not serial_cutover(n_jobs, len(pairs)):
        results = cyclesim_parallel_sweep(
            annotated, pairs, name, progress, min(n_jobs, len(pairs))
        )
        if results is not None:
            return SweepResult(workload=name, results=results)

    results = run_cycle_pairs(cycle_plan_for(annotated), pairs, name)
    if progress is not None:
        for label in results:
            progress(label)
    return SweepResult(workload=name, results=results)
