"""Parameter-sweep harness over MLPsim.

The paper's Figures 4-10 are all sweeps of machine configurations over
the same annotated traces.  :func:`sweep` runs a labelled grid of
machines and collects the results in a :class:`SweepResult` that the
experiment modules index and render.
"""

import dataclasses

from repro.core.mlpsim import simulate


@dataclasses.dataclass
class SweepResult:
    """Results of one machine grid over one annotated trace."""

    workload: str
    results: dict  # label -> MLPResult

    def mlp(self, label):
        """MLP of the configuration named *label*."""
        return self.results[label].mlp

    def labels(self):
        """Configuration labels, in grid order."""
        return list(self.results)

    def series(self, labels=None):
        """Return [(label, mlp)] for plotting/printing."""
        labels = labels if labels is not None else self.labels()
        return [(label, self.results[label].mlp) for label in labels]

    def relative(self, baseline_label):
        """MLP of each config relative to *baseline_label* (1.0 = equal)."""
        base = self.mlp(baseline_label)
        return {
            label: (result.mlp / base if base else 0.0)
            for label, result in self.results.items()
        }


def sweep(annotated, machines, workload=None, progress=None):
    """Run MLPsim for every ``(label, machine)`` pair in *machines*.

    *machines* is an iterable of pairs (an ordered mapping also works).
    *progress*, if given, is called with each label as it completes —
    the benchmark harness uses it for liveness output.
    """
    if hasattr(machines, "items"):
        machines = machines.items()
    results = {}
    name = workload or annotated.trace.name
    for label, machine in machines:
        results[label] = simulate(annotated, machine, workload=name)
        if progress is not None:
            progress(label)
    return SweepResult(workload=name, results=results)
