"""Zero-copy publication of columnar plans to sweep workers.

A parallel batched sweep hands every worker the same
:class:`~repro.core.columnar.ColumnarPlan`.  Pickling the plan per task
would copy megabytes of trace columns for every chunk of configs, so
this module publishes the plan's flat payload **once** and lets workers
attach to it without copying:

* Preferred: one ``multiprocessing.shared_memory`` segment holding all
  columns back to back (64-byte aligned).  Workers map the segment and
  build NumPy views straight over it — the compiled kernel then reads
  its column pointers directly out of shared memory.
* Fallback (no ``/dev/shm``, exhausted shm quota, …): the same packed
  buffer written to a temporary file that workers ``np.memmap``; the
  page cache makes this share physical memory across workers too.

Only the small :class:`PlanHandle` (name + column layout) travels
through the task pickle.

Lifecycle is **parent-owned**: the process that called
:func:`publish_plan` must call :func:`unpublish_plan` when the sweep is
over — on success, on failure, and after killed workers alike (workers
never unlink, and attaching deliberately unregisters the segment from
their ``resource_tracker`` so a dying worker cannot tear the segment
out from under its siblings).  ``tests/test_shared_memory.py`` pins
this contract, including the SIGKILL case.
"""

import dataclasses
import os
import tempfile

import numpy as np

from repro.core.columnar import plan_from_payload, plan_payload
from repro.cyclesim.plan import (
    CYCLE_META_KEY,
    CyclePlan,
    cycle_plan_from_payload,
    cycle_plan_payload,
)
from repro.robustness.errors import TraceFormatError

#: Column alignment inside the packed buffer.  Cache-line sized, and a
#: multiple of every column dtype's itemsize.
_ALIGNMENT = 64


@dataclasses.dataclass(frozen=True)
class PlanHandle:
    """Pickle-friendly description of one published plan.

    ``kind`` is ``"shm"`` (POSIX shared memory segment) or ``"file"``
    (memory-mapped temporary file); ``name`` is the segment name or
    file path.  ``layout`` maps each payload column to
    ``(name, dtype_str, length, offset)`` inside the packed buffer.
    """

    kind: str
    name: str
    layout: tuple
    size: int


class AttachedPlan:
    """A worker-side plan view plus the mapping that backs it.

    The plan's columns are zero-copy views over the shared buffer, so
    the buffer must outlive the plan: keep this object alive while the
    plan is in use and call :meth:`close` (or use it as a context
    manager) when done.  Closing never unlinks — that is the
    publisher's job.
    """

    def __init__(self, plan, segment):
        self.plan = plan
        self._segment = segment

    def __enter__(self):
        return self.plan

    def __exit__(self, *exc_info):
        self.close()
        return False

    def close(self):
        """Drop the plan views and unmap the buffer (never unlinks)."""
        self.plan = None
        segment, self._segment = self._segment, None
        if segment is not None:
            try:
                segment.close()
            except BufferError:  # a caller still holds a column view
                pass


def _pack(payload):
    """Lay the payload columns into one aligned buffer.

    Returns ``(layout, size, columns)`` where *columns* pairs each
    layout entry with its (contiguous) source array.
    """
    layout = []
    columns = []
    offset = 0
    for name in sorted(payload):
        array = np.ascontiguousarray(payload[name])
        offset = -(-offset // _ALIGNMENT) * _ALIGNMENT
        layout.append((name, array.dtype.str, int(array.shape[0]), offset))
        columns.append((offset, array))
        offset += array.nbytes
    return tuple(layout), max(offset, 1), columns


def _fill(buffer, columns):
    for offset, array in columns:
        flat = np.frombuffer(
            buffer, dtype=np.uint8, count=array.nbytes, offset=offset
        )
        flat[:] = array.view(np.uint8).reshape(-1)


def _unpack(buffer, handle):
    """Rebuild the payload dict as zero-copy views over *buffer*."""
    payload = {}
    for name, dtype_str, length, offset in handle.layout:
        dtype = np.dtype(dtype_str)
        payload[name] = np.frombuffer(
            buffer, dtype=dtype, count=length, offset=offset
        )
    return payload


def _publish_shm(layout, size, columns):
    from multiprocessing import shared_memory

    # Ownership transfers by *name*: the segment outlives this scope on
    # purpose (close() drops our mapping only) and unpublish_plan()
    # unlinks it later via the returned handle.
    segment = shared_memory.SharedMemory(create=True, size=size)  # reprolint: disable=shm-lifetime
    try:
        _fill(segment.buf, columns)
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    handle = PlanHandle(
        kind="shm", name=segment.name, layout=layout, size=size
    )
    segment.close()
    return handle


def _publish_file(layout, size, columns):
    fd, path = tempfile.mkstemp(prefix="repro-plan-", suffix=".bin")
    try:
        with os.fdopen(fd, "wb") as fh:
            buffer = bytearray(size)
            _fill(buffer, columns)
            fh.write(buffer)
    except BaseException:
        try:
            os.unlink(path)
        except OSError:
            pass
        raise
    return PlanHandle(kind="file", name=path, layout=layout, size=size)


def publish_plan(plan):
    """Publish *plan* for worker processes; returns a :class:`PlanHandle`.

    Tries a shared-memory segment first and falls back to a
    memory-mapped temporary file.  The caller owns the handle and must
    :func:`unpublish_plan` it exactly once, whatever happens to the
    workers in between.

    Both plan families share this channel: a columnar MLPsim plan and a
    :class:`~repro.cyclesim.plan.CyclePlan` pack to the same flat
    ``{name: array}`` shape, and attachment discriminates on the
    cycle-plan meta record.
    """
    if isinstance(plan, CyclePlan):
        payload = cycle_plan_payload(plan)
    else:
        payload = plan_payload(plan)
    layout, size, columns = _pack(payload)
    try:
        return _publish_shm(layout, size, columns)
    except (ImportError, OSError, ValueError):
        return _publish_file(layout, size, columns)


def attach_plan(handle):
    """Attach to a published plan; returns an :class:`AttachedPlan`.

    The reconstructed plan's columns are views into the shared buffer
    (no copy); schema validation happens through
    :func:`~repro.core.columnar.plan_from_payload`, so a version-skewed
    publisher is rejected loudly.

    Raises
    ------
    repro.robustness.errors.TraceFormatError
        If the segment or file has vanished (the publisher unlinked
        early) or the payload fails schema validation.
    """
    if handle.kind == "shm":
        from multiprocessing import shared_memory

        try:
            segment = shared_memory.SharedMemory(name=handle.name)
        except (OSError, ValueError) as error:
            raise TraceFormatError(
                f"shared plan segment {handle.name!r} is gone: {error}",
                path=handle.name, field="shm",
            ) from error
        # The publisher owns the segment's lifetime.  Python's
        # resource_tracker would unlink it when *this* process exits,
        # yanking it away from sibling workers — unregister our side.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
        buffer = segment.buf
    elif handle.kind == "file":
        try:
            segment = np.memmap(handle.name, dtype=np.uint8, mode="r")
        except (OSError, ValueError) as error:
            raise TraceFormatError(
                f"plan spill file {handle.name!r} is gone: {error}",
                path=handle.name, field="file",
            ) from error
        buffer = segment
    else:
        raise TraceFormatError(
            f"unknown plan handle kind {handle.kind!r}",
            path=handle.name, field="kind",
        )
    payload = _unpack(buffer, handle)
    if CYCLE_META_KEY in payload:
        plan = cycle_plan_from_payload(payload, path=handle.name)
    else:
        plan = plan_from_payload(payload, path=handle.name)
    return AttachedPlan(plan, segment if handle.kind == "shm" else None)


def unpublish_plan(handle):
    """Release a published plan.  Parent-side, idempotent, never raises.

    Safe to call in ``finally`` regardless of how the sweep ended —
    including after SIGKILLed workers, whose attachments hold no
    reference that could resurrect the segment.
    """
    if handle is None:
        return
    if handle.kind == "shm":
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(name=handle.name)
            segment.close()
            segment.unlink()
        except Exception:
            pass  # already gone, or shm unavailable: nothing to release
    elif handle.kind == "file":
        try:
            os.unlink(handle.name)
        except OSError:
            pass


def plan_is_published(handle):
    """Is the segment/file behind *handle* still present?  (Test hook.)"""
    if handle.kind == "shm":
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(name=handle.name)
        except (OSError, ValueError):
            return False
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
        segment.close()
        return True
    return os.path.exists(handle.name)
