"""Seed-robustness analysis.

The paper measures one long trace per workload; our traces are short
synthetic samples, so any reproduced number carries sampling noise.
This module quantifies it: run a metric across generator seeds and
report the spread, so EXPERIMENTS.md claims can say "stable to ±x%"
instead of hoping.
"""

import dataclasses
import math

from repro.core.mlpsim import simulate
from repro.trace.annotate import annotate
from repro.workloads import generate_trace
from repro.robustness.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class SeedSweep:
    """A metric measured across generator seeds."""

    label: str
    seeds: tuple
    values: tuple

    @property
    def mean(self):
        return sum(self.values) / len(self.values)

    @property
    def minimum(self):
        return min(self.values)

    @property
    def maximum(self):
        return max(self.values)

    @property
    def stddev(self):
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def relative_spread(self):
        """(max - min) / mean — the headline stability number."""
        if not self.mean:
            return 0.0
        return (self.maximum - self.minimum) / self.mean

    def summary(self):
        """One-line mean/range/spread rendering."""
        return (
            f"{self.label}: mean={self.mean:.3f}"
            f"  range=[{self.minimum:.3f}, {self.maximum:.3f}]"
            f"  spread={self.relative_spread:.1%}"
            f"  (n={len(self.values)})"
        )


def seed_sweep(metric, seeds, label="metric"):
    """Evaluate ``metric(seed)`` for every seed; return a :class:`SeedSweep`."""
    seeds = tuple(seeds)
    if not seeds:
        raise ConfigError("seed_sweep needs at least one seed")
    values = tuple(metric(seed) for seed in seeds)
    return SeedSweep(label=label, seeds=seeds, values=values)


def mlp_seed_sweep(workload, machine, seeds=(1234, 2024, 7, 99, 5150),
                   trace_len=120_000):
    """MLP of *machine* on *workload* across generator seeds.

    This regenerates and re-annotates the trace per seed, so it costs a
    few seconds per seed at the default length.
    """

    def metric(seed):
        annotated = annotate(generate_trace(workload, trace_len, seed=seed))
        return simulate(annotated, machine).mlp

    return seed_sweep(
        metric, seeds, label=f"{workload}/{machine.label}/MLP"
    )
