"""Analysis helpers: miss clustering, parameter sweeps, table rendering."""

from repro.analysis.clustering import (
    ClusteringCurves,
    cumulative_intermiss_distribution,
    uniform_intermiss_distribution,
    clustering_curves,
)
from repro.analysis.sweep import SweepResult, sweep
from repro.analysis.tables import format_table
from repro.analysis.charts import bar_chart, line_chart
from repro.analysis.variance import SeedSweep, mlp_seed_sweep, seed_sweep

__all__ = [
    "ClusteringCurves",
    "cumulative_intermiss_distribution",
    "uniform_intermiss_distribution",
    "clustering_curves",
    "SweepResult",
    "sweep",
    "format_table",
    "bar_chart",
    "line_chart",
    "SeedSweep",
    "mlp_seed_sweep",
    "seed_sweep",
]
