"""Plain-text table rendering for experiment output.

Every experiment prints the paper's rows/series as a monospaced table;
this is the one formatter they all share.
"""


def _render_cell(value, spec):
    if value is None:
        return ""
    if spec and isinstance(value, float):
        return format(value, spec)
    return str(value)


def format_table(headers, rows, float_format=".3f", title=None):
    """Render *rows* under *headers* as an aligned text table.

    Floats are formatted with *float_format*; ``None`` cells render
    empty.  Returns a string (no trailing newline).
    """
    rendered = [[_render_cell(cell, None) for cell in headers]]
    for row in rows:
        rendered.append([_render_cell(cell, float_format) for cell in row])
    widths = [
        max(len(r[col]) for r in rendered) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        cell.ljust(width) for cell, width in zip(rendered[0], widths)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered[1:]:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)
