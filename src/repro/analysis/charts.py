"""Terminal (ASCII) charts for the figure exhibits.

The paper's figures are line and bar charts; the experiment harnesses
reproduce their *data* as tables, and this module renders those tables
as terminal graphics so the shapes can be eyeballed without a plotting
stack (the reproduction environment is offline and headless).

Two renderers:

* :func:`line_chart` — multi-series line chart over shared x labels
  (Figures 4, 7 and the ablation sweeps);
* :func:`bar_chart` — grouped horizontal bars (Figures 8, 10, 11).
"""

from repro.robustness.errors import ConfigError

_SERIES_MARKS = "o+x*#@%&"


def _scale(value, low, high, width):
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return int(round(position * (width - 1)))


def line_chart(x_labels, series, height=12, width=64, title=None,
               y_format="{:.2f}"):
    """Render a multi-series line chart.

    Parameters
    ----------
    x_labels:
        Labels of the shared x positions (evenly spaced).
    series:
        Mapping of series name to a list of y values (same length as
        *x_labels*; ``None`` entries are skipped).
    height / width:
        Plot area size in character cells.
    """
    values = [
        v for ys in series.values() for v in ys if v is not None
    ]
    if not values:
        raise ConfigError("line_chart needs at least one value")
    low, high = min(values), max(values)
    if high == low:
        high = low + 1.0

    grid = [[" "] * width for _ in range(height)]
    columns = [
        _scale(i, 0, max(1, len(x_labels) - 1), width)
        for i in range(len(x_labels))
    ]
    for mark, (_name, ys) in zip(_SERIES_MARKS, series.items()):
        previous = None
        for i, y in enumerate(ys):
            if y is None:
                previous = None
                continue
            row = height - 1 - _scale(y, low, high, height)
            col = columns[i]
            grid[row][col] = mark
            if previous is not None:
                # Connect with a sparse line.
                prow, pcol = previous
                steps = max(abs(col - pcol), abs(row - prow))
                for s in range(1, steps):
                    r = prow + (row - prow) * s // steps
                    c = pcol + (col - pcol) * s // steps
                    if grid[r][c] == " ":
                        grid[r][c] = "."
            previous = (row, col)

    left_labels = [y_format.format(high), "", y_format.format(low)]
    label_width = max(len(label) for label in left_labels)
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = left_labels[0]
        elif r == height - 1:
            label = left_labels[2]
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    # X labels: first, middle, last.
    xaxis = [" "] * width
    for idx in (0, len(x_labels) // 2, len(x_labels) - 1):
        text = str(x_labels[idx])
        col = min(columns[idx], width - len(text))
        for k, ch in enumerate(text):
            xaxis[col + k] = ch
    lines.append(" " * label_width + "  " + "".join(xaxis))
    legend = "   ".join(
        f"{mark}={name}" for mark, name in zip(_SERIES_MARKS, series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def bar_chart(groups, width=48, title=None, value_format="{:.2f}"):
    """Render grouped horizontal bars.

    *groups* is a list of ``(group_label, [(bar_label, value), ...])``.
    Bars are scaled to the global maximum.
    """
    all_values = [v for _, bars in groups for _, v in bars]
    if not all_values:
        raise ConfigError("bar_chart needs at least one value")
    peak = max(all_values)
    if peak <= 0:
        peak = 1.0
    label_width = max(
        len(str(label)) for _, bars in groups for label, _ in bars
    )
    lines = []
    if title:
        lines.append(title)
    for group_label, bars in groups:
        lines.append(f"{group_label}:")
        for label, value in bars:
            filled = _scale(max(0.0, value), 0, peak, width)
            bar = "#" * max(filled, 1 if value > 0 else 0)
            lines.append(
                f"  {str(label):<{label_width}} |{bar:<{width}}| "
                + value_format.format(value)
            )
    return "\n".join(lines)
