"""Process-parallel execution backend for configuration sweeps.

A sweep runs many independent ``(label, machine)`` simulations over one
shared annotated trace, which makes it embarrassingly parallel.  This
module farms those simulations out to a :class:`ProcessPoolExecutor`:

* On platforms with ``fork`` (Linux, macOS with the fork context) the
  annotated trace is published in a module-level global before the pool
  starts, so workers inherit it copy-on-write and nothing is pickled
  per task except the small machine config and result.
* On platforms without ``fork`` the trace is spilled once to a
  temporary ``.npz`` archive (via the atomic trace writer) and each
  worker loads it in its initializer.

Results are collected in submission order, so ``SweepResult`` label
order and progress-callback order match the serial backend exactly.
A worker exception is re-raised in the parent as
:class:`~repro.robustness.errors.SimulationError` naming the failing
configuration label; remaining queued tasks are cancelled.

The worker count is resolved by :func:`resolve_jobs` from an explicit
argument or the ``REPRO_JOBS`` environment variable; ``0`` means "one
worker per CPU".  When a pool cannot be created at all the caller gets
``None`` back and silently falls back to the serial path, so a
restricted environment degrades to correct (if slower) behaviour.
"""

import concurrent.futures
import multiprocessing
import os
import tempfile

from repro.robustness.errors import ConfigError, SimulationError

#: Annotated trace shared with workers.  Under the fork start method the
#: parent sets it right before creating the pool and clears it after the
#: sweep; forked children inherit the populated value copy-on-write.
#: Under spawn it is populated per worker by :func:`_init_from_spill`.
_WORKER_ANNOTATED = None


def resolve_jobs(jobs=None):
    """Resolve a worker count from *jobs* or the ``REPRO_JOBS`` env var.

    ``None`` falls back to ``REPRO_JOBS`` (absent or empty means serial,
    i.e. 1).  ``0`` means one worker per available CPU.  Anything that
    is not a non-negative integer raises
    :class:`~repro.robustness.errors.ConfigError`.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env is None or not env.strip():
            return 1
        try:
            jobs = int(env.strip())
        except ValueError:
            raise ConfigError(
                f"REPRO_JOBS must be an integer, got {env!r}",
                field="REPRO_JOBS",
            ) from None
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ConfigError(
            f"jobs must be an integer, got {jobs!r}", field="jobs"
        )
    if jobs < 0:
        raise ConfigError(
            f"jobs must be non-negative, got {jobs}", field="jobs"
        )
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return jobs


def _init_from_spill(path):
    """Worker initializer for spawn-style pools: load the spilled trace."""
    global _WORKER_ANNOTATED
    from repro.trace.io import load_annotated

    _WORKER_ANNOTATED = load_annotated(path)


def _run_one(label, machine, workload):
    """Simulate one configuration against the shared annotated trace."""
    from repro.core.mlpsim import simulate

    if _WORKER_ANNOTATED is None:
        raise SimulationError(
            f"sweep worker has no annotated trace for config {label!r}",
            field=label,
        )
    return simulate(_WORKER_ANNOTATED, machine, workload=workload)


def _make_pool(annotated, jobs):
    """Create a process pool primed with *annotated*.

    Returns ``(executor, spill_path)``; *spill_path* is the temporary
    archive to delete after the sweep (``None`` under fork).  Returns
    ``(None, None)`` when no pool can be created, signalling the caller
    to fall back to the serial backend.
    """
    global _WORKER_ANNOTATED
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        ctx = None
    if ctx is not None:
        try:
            _WORKER_ANNOTATED = annotated
            return (
                concurrent.futures.ProcessPoolExecutor(
                    max_workers=jobs, mp_context=ctx
                ),
                None,
            )
        except (OSError, ValueError):
            _WORKER_ANNOTATED = None
            return None, None
    # No fork on this platform: spill the trace once and let each
    # spawned worker load it in its initializer.
    spill_path = None
    try:
        from repro.trace.io import save_annotated

        fd, spill_path = tempfile.mkstemp(
            prefix="repro-sweep-", suffix=".npz"
        )
        os.close(fd)
        save_annotated(spill_path, annotated)
        ctx = multiprocessing.get_context("spawn")
        return (
            concurrent.futures.ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=ctx,
                initializer=_init_from_spill,
                initargs=(spill_path,),
            ),
            spill_path,
        )
    except (OSError, ValueError):
        if spill_path is not None:
            try:
                os.unlink(spill_path)
            except OSError:
                pass
        return None, None


def parallel_sweep_results(annotated, pairs, workload, progress, jobs):
    """Run ``(label, machine)`` *pairs* on a pool of *jobs* workers.

    Returns ``{label: MLPResult}`` in submission order, or ``None`` if
    a worker pool could not be created (the caller then runs serially).
    A failing worker raises :class:`SimulationError` naming the label
    of the configuration that failed.
    """
    global _WORKER_ANNOTATED
    executor, spill_path = _make_pool(annotated, jobs)
    if executor is None:
        return None
    try:
        with executor:
            futures = [
                (label, executor.submit(_run_one, label, machine, workload))
                for label, machine in pairs
            ]
            results = {}
            for label, future in futures:
                try:
                    results[label] = future.result()
                except concurrent.futures.process.BrokenProcessPool as exc:
                    raise SimulationError(
                        f"sweep worker died running config {label!r}: {exc}",
                        field=label,
                    ) from exc
                except Exception as exc:
                    executor.shutdown(wait=False, cancel_futures=True)
                    raise SimulationError(
                        f"sweep worker failed for config {label!r}: {exc}",
                        field=label,
                    ) from exc
                if progress is not None:
                    progress(label)
            return results
    finally:
        _WORKER_ANNOTATED = None
        if spill_path is not None:
            try:
                os.unlink(spill_path)
            except OSError:
                pass
