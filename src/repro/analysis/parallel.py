"""Process-parallel execution backend for configuration sweeps.

A sweep runs many independent ``(label, machine)`` simulations over one
shared annotated trace, which makes it embarrassingly parallel.  This
module farms those simulations out to a :class:`ProcessPoolExecutor`:

* On platforms with ``fork`` (Linux, macOS with the fork context) the
  annotated trace is published in a module-level global before the pool
  starts, so workers inherit it copy-on-write and nothing is pickled
  per task except the small machine config and result.
* On platforms without ``fork`` the trace is spilled once to a
  temporary ``.npz`` archive (via the atomic trace writer) and each
  worker loads it in its initializer.

Results are collected in submission order, so ``SweepResult`` label
order and progress-callback order match the serial backend exactly.
A worker exception is re-raised in the parent as
:class:`~repro.robustness.errors.SimulationError` naming the failing
configuration label; remaining queued tasks are cancelled.

The worker count is resolved by :func:`resolve_jobs` from an explicit
argument or the ``REPRO_JOBS`` environment variable; ``0`` means "one
worker per CPU".  When a pool cannot be created at all the caller gets
``None`` back and silently falls back to the serial path, so a
restricted environment degrades to correct (if slower) behaviour.
"""

import concurrent.futures
import multiprocessing
import os
import tempfile
import time

from repro.robustness.errors import ConfigError, SimulationError

#: Annotated trace shared with workers.  Under the fork start method the
#: parent sets it right before creating the pool and clears it after the
#: sweep; forked children inherit the populated value copy-on-write.
#: Under spawn it is populated per worker by :func:`_init_from_spill`.
_WORKER_ANNOTATED = None


def resolve_jobs(jobs=None):
    """Resolve a worker count from *jobs* or the ``REPRO_JOBS`` env var.

    ``None`` falls back to ``REPRO_JOBS`` (absent or empty means serial,
    i.e. 1).  ``0`` means one worker per available CPU.  Anything that
    is not a non-negative integer raises
    :class:`~repro.robustness.errors.ConfigError`.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env is None or not env.strip():
            return 1
        try:
            jobs = int(env.strip())
        except ValueError:
            raise ConfigError(
                f"REPRO_JOBS must be an integer, got {env!r}",
                field="REPRO_JOBS",
            ) from None
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ConfigError(
            f"jobs must be an integer, got {jobs!r}", field="jobs"
        )
    if jobs < 0:
        raise ConfigError(
            f"jobs must be non-negative, got {jobs}", field="jobs"
        )
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return jobs


def _init_from_spill(path):
    """Worker initializer for spawn-style pools: load the spilled trace."""
    global _WORKER_ANNOTATED
    from repro.trace.io import load_annotated

    _WORKER_ANNOTATED = load_annotated(path)


def _run_one(label, machine, workload):
    """Simulate one configuration against the shared annotated trace."""
    from repro.core.mlpsim import simulate

    if _WORKER_ANNOTATED is None:
        raise SimulationError(
            f"sweep worker has no annotated trace for config {label!r}",
            field=label,
        )
    return simulate(_WORKER_ANNOTATED, machine, workload=workload)


def share_annotated(annotated):
    """Publish *annotated* for worker processes; returns ``(ctx, spill)``.

    Preferred path: the ``fork`` start method, with the trace parked in
    the module global so children inherit it copy-on-write (``spill``
    is ``None``).  Platforms without fork get the ``spawn`` context and
    a temporary ``.npz`` spill each worker must load.  ``(None, None)``
    means no multiprocessing context is usable at all and the caller
    should run serially.  Balance every successful call with
    :func:`unshare_annotated`.
    """
    global _WORKER_ANNOTATED
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        ctx = None
    if ctx is not None:
        _WORKER_ANNOTATED = annotated
        return ctx, None
    spill_path = None
    try:
        from repro.trace.io import save_annotated

        fd, spill_path = tempfile.mkstemp(
            prefix="repro-sweep-", suffix=".npz"
        )
        os.close(fd)
        save_annotated(annotated, spill_path)
        return multiprocessing.get_context("spawn"), spill_path
    except (OSError, ValueError):
        if spill_path is not None:
            try:
                os.unlink(spill_path)
            except OSError:
                pass
        return None, None


def unshare_annotated(spill_path):
    """Drop the shared trace and delete the spill archive, if any."""
    global _WORKER_ANNOTATED
    _WORKER_ANNOTATED = None
    if spill_path is not None:
        try:
            os.unlink(spill_path)
        except OSError:
            pass


def _make_pool(annotated, jobs):
    """Create a process pool primed with *annotated*.

    Returns ``(executor, spill_path)``; *spill_path* is the temporary
    archive to delete after the sweep (``None`` under fork).  Returns
    ``(None, None)`` when no pool can be created, signalling the caller
    to fall back to the serial backend.
    """
    ctx, spill_path = share_annotated(annotated)
    if ctx is None:
        return None, None
    kwargs = {"max_workers": jobs, "mp_context": ctx}
    if spill_path is not None:
        kwargs["initializer"] = _init_from_spill
        kwargs["initargs"] = (spill_path,)
    try:
        return concurrent.futures.ProcessPoolExecutor(**kwargs), spill_path
    except (OSError, ValueError):
        unshare_annotated(spill_path)
        return None, None


def parallel_sweep_results(annotated, pairs, workload, progress, jobs):
    """Run ``(label, machine)`` *pairs* on a pool of *jobs* workers.

    Returns ``{label: MLPResult}`` in submission order, or ``None`` if
    a worker pool could not be created (the caller then runs serially).
    A failing worker raises :class:`SimulationError` naming the label
    of the configuration that failed, the attempt count (always 1 on
    this unsupervised backend — ``repro.robustness.supervisor`` is the
    retrying layer) and the elapsed wall-clock time, so a failure in a
    long campaign is diagnosable from the one-line message.
    """
    executor, spill_path = _make_pool(annotated, jobs)
    if executor is None:
        return None
    started = time.monotonic()
    try:
        with executor:
            futures = [
                (label, executor.submit(_run_one, label, machine, workload))
                for label, machine in pairs
            ]
            results = {}
            for label, future in futures:
                try:
                    results[label] = future.result()
                except concurrent.futures.process.BrokenProcessPool as exc:
                    elapsed = time.monotonic() - started
                    raise SimulationError(
                        f"sweep worker died running config {label!r}"
                        f" (attempt 1, after {elapsed:.1f}s): {exc}",
                        field=label,
                    ) from exc
                except Exception as exc:
                    executor.shutdown(wait=False, cancel_futures=True)
                    elapsed = time.monotonic() - started
                    raise SimulationError(
                        f"sweep worker failed for config {label!r}"
                        f" (attempt 1, after {elapsed:.1f}s): {exc}",
                        field=label,
                    ) from exc
                if progress is not None:
                    progress(label)
            return results
    finally:
        unshare_annotated(spill_path)
