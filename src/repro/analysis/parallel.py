"""Process-parallel execution backend for configuration sweeps.

A sweep runs many independent ``(label, machine)`` simulations over one
shared annotated trace, which makes it embarrassingly parallel.  This
module farms those simulations out to a :class:`ProcessPoolExecutor`:

* On platforms with ``fork`` (Linux, macOS with the fork context) the
  annotated trace is published in a module-level global before the pool
  starts, so workers inherit it copy-on-write and nothing is pickled
  per task except the small machine config and result.
* On platforms without ``fork`` the trace is spilled once to a
  temporary ``.npz`` archive (via the atomic trace writer) and each
  worker loads it in its initializer.

Results are collected in submission order, so ``SweepResult`` label
order and progress-callback order match the serial backend exactly.
A worker exception is re-raised in the parent as
:class:`~repro.robustness.errors.SimulationError` naming the failing
configuration label; remaining queued tasks are cancelled.

The worker count is resolved by :func:`resolve_jobs` from an explicit
argument or the ``REPRO_JOBS`` environment variable; ``0`` means "one
worker per CPU".  When a pool cannot be created at all the caller gets
``None`` back and silently falls back to the serial path, so a
restricted environment degrades to correct (if slower) behaviour.
"""

import concurrent.futures
import math
import multiprocessing
import os
import tempfile
import time

from repro.robustness.errors import ConfigError, SimulationError

#: Minimum estimated *remaining* sweep seconds before a process pool is
#: worth spinning up; below it the auto cutover runs serially.  Pool
#: creation plus per-task IPC costs a few hundred milliseconds, so a
#: sweep that measures cheaper than this can only lose by going wide.
SERIAL_CUTOVER_SECONDS = 1.0

#: Target wall-clock per sharded chunk of a batched parallel sweep.
#: Chunks much smaller than this drown in IPC; much bigger ones starve
#: the tail workers and coarsen journal flushes.
CHUNK_TARGET_SECONDS = 0.25

#: Annotated trace shared with workers.  Under the fork start method the
#: parent sets it right before creating the pool and clears it after the
#: sweep; forked children inherit the populated value copy-on-write.
#: Under spawn it is populated per worker by :func:`_init_from_spill`.
_WORKER_ANNOTATED = None


def resolve_jobs(jobs=None):
    """Resolve a worker count from *jobs* or the ``REPRO_JOBS`` env var.

    ``None`` falls back to ``REPRO_JOBS`` (absent or empty means serial,
    i.e. 1).  ``0`` means one worker per available CPU.  Anything that
    is not a non-negative integer raises
    :class:`~repro.robustness.errors.ConfigError`.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env is None or not env.strip():
            return 1
        try:
            jobs = int(env.strip())
        except ValueError:
            raise ConfigError(
                f"REPRO_JOBS must be an integer, got {env!r}",
                field="REPRO_JOBS",
            ) from None
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ConfigError(
            f"jobs must be an integer, got {jobs!r}", field="jobs"
        )
    if jobs < 0:
        raise ConfigError(
            f"jobs must be non-negative, got {jobs}", field="jobs"
        )
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return jobs


def _init_from_spill(path):
    """Worker initializer for spawn-style pools: load the spilled trace."""
    global _WORKER_ANNOTATED
    from repro.trace.io import load_annotated

    _WORKER_ANNOTATED = load_annotated(path)


def _run_one(label, machine, workload):
    """Simulate one configuration against the shared annotated trace."""
    from repro.core.mlpsim import simulate

    if _WORKER_ANNOTATED is None:
        raise SimulationError(
            f"sweep worker has no annotated trace for config {label!r}",
            field=label,
        )
    return simulate(_WORKER_ANNOTATED, machine, workload=workload)


def share_annotated(annotated):
    """Publish *annotated* for worker processes; returns ``(ctx, spill)``.

    Preferred path: the ``fork`` start method, with the trace parked in
    the module global so children inherit it copy-on-write (``spill``
    is ``None``).  Platforms without fork get the ``spawn`` context and
    a temporary ``.npz`` spill each worker must load.  ``(None, None)``
    means no multiprocessing context is usable at all and the caller
    should run serially.  Balance every successful call with
    :func:`unshare_annotated`.
    """
    global _WORKER_ANNOTATED
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        ctx = None
    if ctx is not None:
        _WORKER_ANNOTATED = annotated
        return ctx, None
    spill_path = None
    try:
        from repro.trace.io import save_annotated

        fd, spill_path = tempfile.mkstemp(
            prefix="repro-sweep-", suffix=".npz"
        )
        os.close(fd)
        save_annotated(annotated, spill_path)
        return multiprocessing.get_context("spawn"), spill_path
    except (OSError, ValueError):
        if spill_path is not None:
            try:
                os.unlink(spill_path)
            except OSError:
                pass
        return None, None


def unshare_annotated(spill_path):
    """Drop the shared trace and delete the spill archive, if any."""
    global _WORKER_ANNOTATED
    _WORKER_ANNOTATED = None
    if spill_path is not None:
        try:
            os.unlink(spill_path)
        except OSError:
            pass


def _make_pool(annotated, jobs):
    """Create a process pool primed with *annotated*.

    Returns ``(executor, spill_path)``; *spill_path* is the temporary
    archive to delete after the sweep (``None`` under fork).  Returns
    ``(None, None)`` when no pool can be created, signalling the caller
    to fall back to the serial backend.
    """
    ctx, spill_path = share_annotated(annotated)
    if ctx is None:
        return None, None
    kwargs = {"max_workers": jobs, "mp_context": ctx}
    if spill_path is not None:
        kwargs["initializer"] = _init_from_spill
        kwargs["initargs"] = (spill_path,)
    try:
        return concurrent.futures.ProcessPoolExecutor(**kwargs), spill_path
    except (OSError, ValueError):
        unshare_annotated(spill_path)
        return None, None


def effective_cpus():
    """CPUs the scheduler will actually give us (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def serial_cutover(n_jobs, n_pairs, per_config_seconds=None):
    """Should a ``jobs=N`` sweep fall back to the serial backend?

    The cutover triggers when parallelism cannot pay for its own
    overhead: a single effective CPU (process pools only add IPC to
    CPU-bound simulation), a grid smaller than two configs, or —
    when a measured *per_config_seconds* is available — an estimated
    remaining runtime under :data:`SERIAL_CUTOVER_SECONDS`.  This is
    what keeps ``jobs=4`` from ever being slower than ``jobs=1`` on
    small grids and keeps single-core scaling at ~1.0.
    """
    if n_jobs <= 1 or n_pairs <= 1:
        return True
    if effective_cpus() <= 1:
        return True
    if per_config_seconds is not None:
        return per_config_seconds * n_pairs < SERIAL_CUTOVER_SECONDS
    return False


def serial_sweep_results(annotated, pairs, workload, progress):
    """The serial-cutover backend: in-process, but with the parallel
    backend's error contract (label-carrying :class:`SimulationError`
    with attempt count and elapsed time), so ``jobs=N`` keeps one
    failure surface whichever backend the cutover picks.
    """
    from repro.core.mlpsim import simulate

    started = time.monotonic()
    results = {}
    for label, machine in pairs:
        try:
            results[label] = simulate(annotated, machine, workload=workload)
        except Exception as exc:
            elapsed = time.monotonic() - started
            raise SimulationError(
                f"sweep config {label!r} failed"
                f" (attempt 1, after {elapsed:.1f}s): {exc}",
                field=label,
            ) from exc
        if progress is not None:
            progress(label)
    return results


def measure_config_cost(run_one):
    """Time one configuration; returns ``(result, seconds)``.

    The measurement doubles as real work — the caller merges the
    result instead of re-running the config — so the cutover estimate
    is free.
    """
    started = time.perf_counter()
    result = run_one()
    return result, time.perf_counter() - started


def shard_pairs(pairs, per_config_seconds, jobs):
    """Split *pairs* into chunks sized by measured per-config cost.

    Each chunk aims for :data:`CHUNK_TARGET_SECONDS` of kernel time but
    never exceeds an even ``len(pairs) / jobs`` split, so every worker
    gets work even when configs are expensive, and cheap configs are
    batched into few kernel calls instead of thousands of tasks.
    """
    if not pairs:
        return []
    cost = max(per_config_seconds, 1e-6)
    by_cost = max(1, int(CHUNK_TARGET_SECONDS / cost))
    by_balance = math.ceil(len(pairs) / max(jobs, 1))
    chunk = max(1, min(by_cost, by_balance))
    return [pairs[i:i + chunk] for i in range(0, len(pairs), chunk)]


def _run_plan_chunk(handle, chunk, workload):
    """Worker: attach the shared plan and run one chunk of configs.

    The compiled kernel (or the NumPy fallback engine) reads its
    columns straight out of the shared mapping — the only pickles per
    task are the machine configs in and the results out.
    """
    from repro.analysis.shm import attach_plan
    from repro.core.batched import simulate_plan
    from repro.core.ckernel import kernel_available, run_plan

    attached = attach_plan(handle)
    try:
        if kernel_available():
            return run_plan(attached.plan, chunk, workload)
        return {
            label: simulate_plan(attached.plan, machine, workload)
            for label, machine in chunk
        }
    finally:
        attached.close()


def batched_parallel_sweep(annotated, pairs, workload, progress, jobs,
                           journal=None, seed=None, trace_len=None):
    """Zero-copy parallel sweep of batched-eligible *pairs*.

    The parent builds one columnar plan per event-mask group, publishes
    each through :mod:`repro.analysis.shm`, measures the per-config
    kernel cost on the first config, shards the rest into chunks of
    roughly :data:`CHUNK_TARGET_SECONDS`, and fans the chunks out to a
    worker pool.  Chunk results are flushed through *journal* (a
    :class:`~repro.robustness.journal.SweepJournal`) as they arrive, so
    a crash loses at most one chunk of work.

    Returns ``{label: MLPResult}`` in grid order, or ``None`` when no
    pool can be created (callers fall back to the serial batched path).
    Progress callbacks fire in grid order once all results are in —
    the same order the serial backend reports.  Shared segments are
    unlinked in ``finally``, whether the sweep succeeded, raised, or
    lost workers.
    """
    from repro.analysis.shm import publish_plan, unpublish_plan
    from repro.core.batched import simulate_batched
    from repro.core.columnar import mask_key, plan_for

    groups = {}
    for label, machine in pairs:
        groups.setdefault(mask_key(machine), []).append((label, machine))

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        ctx = multiprocessing.get_context("spawn")

    results = {}
    started = time.monotonic()
    # Measure the per-config cost on the first config of the first
    # group; the result is kept, so calibration is free work.
    first_key = next(iter(groups))
    first_label, first_machine = groups[first_key][0]
    first_result, cost = measure_config_cost(
        lambda: simulate_batched(
            annotated, first_machine, workload=workload, _validate=False
        )
    )
    results[first_label] = first_result
    remaining = {
        key: [p for p in group if p[0] != first_label]
        for key, group in groups.items()
    }

    handles = {}
    executor = None
    try:
        for key, group in remaining.items():
            if group:
                handles[key] = publish_plan(
                    plan_for(annotated, group[0][1])
                )
        tasks = []
        for key, group in remaining.items():
            for chunk in shard_pairs(group, cost, jobs):
                tasks.append((handles[key], chunk))
        if tasks:
            try:
                executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(jobs, len(tasks)), mp_context=ctx
                )
            except (OSError, ValueError):
                return None
            futures = [
                (chunk, executor.submit(
                    _run_plan_chunk, handle, chunk, workload
                ))
                for handle, chunk in tasks
            ]
            for chunk, future in futures:
                labels = ", ".join(label for label, _ in chunk)
                try:
                    chunk_results = future.result()
                except Exception as exc:
                    elapsed = time.monotonic() - started
                    if executor is not None:
                        executor.shutdown(wait=False, cancel_futures=True)
                    raise SimulationError(
                        f"sweep worker failed for configs [{labels}]"
                        f" (attempt 1, after {elapsed:.1f}s): {exc}",
                        field=chunk[0][0],
                    ) from exc
                results.update(chunk_results)
                if journal is not None:
                    _flush_chunk(
                        journal, chunk, chunk_results, workload,
                        seed, trace_len, time.monotonic() - started,
                    )
    finally:
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        for handle in handles.values():
            unpublish_plan(handle)

    ordered = {label: results[label] for label, _ in pairs}
    if progress is not None:
        for label in ordered:
            progress(label)
    return ordered


def _run_cycle_chunk(handle, chunk, workload):
    """Worker: attach the shared cycle plan and run one config chunk.

    The compiled cyclesim kernel (or the interpreter tier) reads the
    per-instruction tables straight out of the shared mapping — the
    only pickles per task are the pipeline configs in and the
    :class:`~repro.cyclesim.metrics.CycleMetrics` out.
    """
    from repro.analysis.shm import attach_plan
    from repro.cyclesim.simulator import run_cycle_pairs

    attached = attach_plan(handle)
    try:
        return run_cycle_pairs(attached.plan, chunk, workload)
    finally:
        attached.close()


def cyclesim_parallel_sweep(annotated, pairs, workload, progress, jobs,
                            journal=None, seed=None, trace_len=None):
    """Zero-copy parallel sweep of cyclesim ``(label, config)`` *pairs*.

    The cyclesim twin of :func:`batched_parallel_sweep`, one notch
    simpler: the cycle plan never depends on the configuration (no
    event-mask groups — ``perfect_l2`` is an access-time knob), so one
    published plan serves the entire grid.  The parent measures the
    per-config cost on the first config, shards the rest into chunks of
    roughly :data:`CHUNK_TARGET_SECONDS`, fans them out, and flushes
    results through *journal* as chunks land.

    Returns ``{label: CycleMetrics}`` in grid order, or ``None`` when
    no pool can be created (callers fall back to the serial path).
    The shared segment is unlinked in ``finally`` whatever happens.
    """
    from repro.analysis.shm import publish_plan, unpublish_plan
    from repro.cyclesim.plan import cycle_plan_for
    from repro.cyclesim.simulator import run_cyclesim

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        ctx = multiprocessing.get_context("spawn")

    results = {}
    started = time.monotonic()
    # Calibration doubles as real work: the first config's result is
    # kept, and running it in the parent also builds (and memoises)
    # the plan every chunk will share.
    first_label, first_config = pairs[0]
    first_result, cost = measure_config_cost(
        lambda: run_cyclesim(annotated, first_config, workload=workload)
    )
    results[first_label] = first_result
    remaining = [p for p in pairs if p[0] != first_label]

    handle = None
    executor = None
    try:
        chunks = shard_pairs(remaining, cost, jobs)
        if chunks:
            handle = publish_plan(cycle_plan_for(annotated))
            try:
                executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(jobs, len(chunks)), mp_context=ctx
                )
            except (OSError, ValueError):
                return None
            futures = [
                (chunk, executor.submit(
                    _run_cycle_chunk, handle, chunk, workload
                ))
                for chunk in chunks
            ]
            for chunk, future in futures:
                labels = ", ".join(label for label, _ in chunk)
                try:
                    chunk_results = future.result()
                except Exception as exc:
                    elapsed = time.monotonic() - started
                    executor.shutdown(wait=False, cancel_futures=True)
                    raise SimulationError(
                        f"sweep worker failed for configs [{labels}]"
                        f" (attempt 1, after {elapsed:.1f}s): {exc}",
                        field=chunk[0][0],
                    ) from exc
                results.update(chunk_results)
                if journal is not None:
                    _flush_chunk(
                        journal, chunk, chunk_results, workload,
                        seed, trace_len, time.monotonic() - started,
                    )
    finally:
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        unpublish_plan(handle)

    ordered = {label: results[label] for label, _ in pairs}
    if progress is not None:
        for label in ordered:
            progress(label)
    return ordered


def _flush_chunk(journal, chunk, chunk_results, workload, seed, trace_len,
                 elapsed):
    """Append one chunk's results to the sweep journal, fail-soft."""
    from repro.robustness.journal import config_key

    per_config = elapsed / max(len(chunk), 1)
    for label, machine in chunk:
        try:
            key = config_key(workload, seed, trace_len, machine)
            journal.record_attempt(key, label, 1)
            journal.record_result(
                key, label, 1, per_config, chunk_results[label]
            )
        except Exception:
            pass  # journalling is an aid; never fail the sweep over it


def parallel_sweep_results(annotated, pairs, workload, progress, jobs):
    """Run ``(label, machine)`` *pairs* on a pool of *jobs* workers.

    Returns ``{label: MLPResult}`` in submission order, or ``None`` if
    a worker pool could not be created (the caller then runs serially).
    A failing worker raises :class:`SimulationError` naming the label
    of the configuration that failed, the attempt count (always 1 on
    this unsupervised backend — ``repro.robustness.supervisor`` is the
    retrying layer) and the elapsed wall-clock time, so a failure in a
    long campaign is diagnosable from the one-line message.
    """
    executor, spill_path = _make_pool(annotated, jobs)
    if executor is None:
        return None
    started = time.monotonic()
    try:
        with executor:
            futures = [
                (label, executor.submit(_run_one, label, machine, workload))
                for label, machine in pairs
            ]
            results = {}
            for label, future in futures:
                try:
                    results[label] = future.result()
                except concurrent.futures.process.BrokenProcessPool as exc:
                    elapsed = time.monotonic() - started
                    raise SimulationError(
                        f"sweep worker died running config {label!r}"
                        f" (attempt 1, after {elapsed:.1f}s): {exc}",
                        field=label,
                    ) from exc
                except Exception as exc:
                    executor.shutdown(wait=False, cancel_futures=True)
                    elapsed = time.monotonic() - started
                    raise SimulationError(
                        f"sweep worker failed for config {label!r}"
                        f" (attempt 1, after {elapsed:.1f}s): {exc}",
                        field=label,
                    ) from exc
                if progress is not None:
                    progress(label)
            return results
    finally:
        unshare_annotated(spill_path)
