"""Figure 10: the limit study.

Starting from a runahead baseline (upper graph) and from a conventional
64-entry-window / 256-entry-ROB configuration-D machine (lower graph),
MLP with perfect instruction prefetching, perfect missing-load value
prediction, perfect branch prediction, and perfect VP+BP combined.  The
paper's findings to reproduce: on top of RAE all three perfections give
solid gains for the database workload and SPECweb99; perfect
instruction fetch gains *nothing* for SPECjbb2000 (it has no I-miss
problem) while perfect VP/BP gain a lot; VP+BP combined is
super-additive (paper: +134%/+215%/+57% over RAE); gains over the
non-RAE baseline are much more modest.
"""

from repro.analysis.sweep import sweep
from repro.core.limits import limit_configs
from repro.experiments.common import (
    DISPLAY_NAMES,
    Exhibit,
    WORKLOAD_NAMES,
    get_annotated,
)

VARIANT_ORDER = ("base", "perfI", "perfVP", "perfBP", "perfVP.perfBP")


def run(trace_len=None):
    """Reproduce Figure 10; returns an :class:`Exhibit`."""
    tables = []
    notes = []
    for runahead in (True, False):
        grid = limit_configs(runahead=runahead)
        prefix = grid[0][0]
        rows = []
        for name in WORKLOAD_NAMES:
            annotated = get_annotated(name, trace_len)
            result = sweep(annotated, grid)
            base = result.mlp(prefix)
            row = [DISPLAY_NAMES[name]]
            for label, _ in grid:
                row.append(result.mlp(label))
            row.append(result.mlp(grid[-1][0]) / base - 1 if base else 0.0)
            rows.append(row)
            if runahead:
                perfi_gain = result.mlp(f"{prefix}.perfI") / base - 1
                notes.append(
                    f"{DISPLAY_NAMES[name]}: RAE.perfI = {perfi_gain:+.0%}"
                    " (paper: ~+40-48% database, ~0% SPECjbb2000,"
                    " ~+21-23% SPECweb99)"
                )
        headers = ["Benchmark"] + [label for label, _ in grid]
        headers.append("VP+BP gain")
        title = (
            "Baseline: runahead (upper graph)"
            if runahead
            else "Baseline: 64D, ROB 256, no runahead (lower graph)"
        )
        tables.append((title, headers, rows))
    notes.append(
        "paper: RAE.perfVP.perfBP = +134%/+215%/+57% over RAE; gains over"
        " the conventional baseline are modest by comparison"
    )
    return Exhibit(
        name="Figure 10",
        title="Limit study: perfect I-fetch, branch and value prediction",
        tables=tables,
        notes=notes,
    )
