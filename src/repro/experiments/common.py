"""Shared infrastructure for the per-exhibit harnesses.

Traces and annotations are expensive relative to MLPsim runs, so they
are memoised per (workload, length, L2 size, seed) and shared between
exhibits within a process.  The memo is additionally disk-backed: an
annotation that was generated once is spilled to
``benchmarks/results/.cache/`` (override with ``REPRO_CACHE_DIR``;
set it to an empty string to disable) as a versioned ``.npz`` archive,
so repeated ``repro exhibit`` invocations and sweep worker pools stop
regenerating identical traces.  The disk layer is fail-soft in both
directions — an unreadable or corrupt archive falls back to
regeneration, an unwritable directory skips the spill.

The trace length defaults to ``REPRO_TRACE_LEN`` (environment
variable) or 400,000 instructions — far below the paper's 150M, which
is why EXPERIMENTS.md compares shapes rather than absolute values.
"""

import dataclasses
import hashlib
import logging
import os

from repro.analysis.tables import format_table
from repro.memory.hierarchy import HierarchyConfig
from repro.robustness.errors import ConfigError
from repro.trace.annotate import AnnotationConfig, annotate
from repro.workloads import generate_trace

#: Workloads in the paper's presentation order.
WORKLOAD_NAMES = ("database", "specjbb2000", "specweb99")

#: Shorter display names for table columns.
DISPLAY_NAMES = {
    "database": "Database",
    "specjbb2000": "SPECjbb2000",
    "specweb99": "SPECweb99",
}

DEFAULT_SEED = 1234

#: Subdirectory of the disk cache where corrupt entries are moved for
#: post-mortem inspection instead of being silently deleted.
QUARANTINE_DIRNAME = "quarantine"

_log = logging.getLogger("repro.cache")

_annotation_cache = {}


def default_trace_len():
    """Trace length used by the exhibits (REPRO_TRACE_LEN overrides)."""
    return int(os.environ.get("REPRO_TRACE_LEN", "400000"))


def cache_dir():
    """Directory for disk-cached annotations, or ``None`` when disabled.

    ``REPRO_CACHE_DIR`` overrides the default
    ``benchmarks/results/.cache/`` under the repository root; setting
    it to an empty string disables the disk layer entirely.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override is not None:
        return override if override.strip() else None
    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        )))
    )
    return os.path.join(repo_root, "benchmarks", "results", ".cache")


def _cache_path(name, trace_len, l2_bytes, seed):
    """Disk-cache archive path for one annotation key, or ``None``."""
    directory = cache_dir()
    if directory is None:
        return None
    from repro.trace.io import FORMAT_VERSION

    from repro.core.columnar import COLUMNAR_SCHEMA_VERSION

    _quarantine_stale_entries(directory)
    digest = hashlib.sha1(
        f"v{FORMAT_VERSION}:c{COLUMNAR_SCHEMA_VERSION}:"
        f"{name}:{trace_len}:{l2_bytes}:{seed}".encode()
    ).hexdigest()
    return os.path.join(
        directory,
        f"annotated-c{COLUMNAR_SCHEMA_VERSION}-{digest}.npz",
    )


_stale_scan_done = set()


def _quarantine_stale_entries(directory):
    """Quarantine cache entries from older columnar schema versions.

    Entry filenames carry the :data:`COLUMNAR_SCHEMA_VERSION` they were
    written under (``annotated-c<V>-<digest>.npz``); anything else —
    including pre-columnar ``annotated-<digest>.npz`` archives — can
    never be loaded again and would otherwise rot in the cache forever.
    They are moved to the quarantine directory (same path corrupt
    entries take) so a schema bump leaves an inspectable trail instead
    of silent disk growth.  Scans once per directory per process.
    """
    if directory in _stale_scan_done:
        return
    _stale_scan_done.add(directory)
    from repro.core.columnar import COLUMNAR_SCHEMA_VERSION

    current = f"annotated-c{COLUMNAR_SCHEMA_VERSION}-"
    try:
        entries = os.listdir(directory)
    except OSError:
        return
    for entry in entries:
        if (entry.startswith("annotated-") and entry.endswith(".npz")
                and not entry.startswith(current)):
            _quarantine_cache_entry(
                os.path.join(directory, entry),
                "columnar schema version skew",
            )


def _quarantine_cache_entry(path, error):
    """Move a corrupt cache entry aside and log a loud warning.

    A corrupt entry used to be silently unlinked, which hid recurring
    corruption (a flaky disk, a crashing writer) behind transparent
    regeneration.  Moving it to ``<cache>/quarantine/`` keeps the
    evidence, and the warning makes the pattern visible in logs.
    Falls back to deletion if the move itself fails — the entry must
    leave the cache path either way so the loader regenerates.
    """
    quarantine_dir = os.path.join(os.path.dirname(path), QUARANTINE_DIRNAME)
    target = os.path.join(quarantine_dir, os.path.basename(path))
    try:
        os.makedirs(quarantine_dir, exist_ok=True)
        os.replace(path, target)
    except OSError:
        target = None
        try:
            os.unlink(path)
        except OSError:
            pass
    _log.warning(
        "corrupt annotation cache entry %s (%s); %s and regenerating",
        path,
        error,
        f"quarantined to {target}" if target else "deleted (move failed)",
    )


def _load_cached_annotation(path):
    """Load a disk-cached annotation, or ``None`` on any failure.

    Corrupt, truncated, or version-skewed archives must regenerate,
    not crash: the cache is an accelerator, never a source of truth.
    The damaged file is quarantined (see :func:`_quarantine_cache_entry`)
    so recurring corruption stays visible.
    """
    if path is None or not os.path.exists(path):
        return None
    from repro.trace.io import load_annotated

    try:
        return load_annotated(path)
    except Exception as error:
        _quarantine_cache_entry(path, error)
        return None


def _store_cached_annotation(path, annotated):
    """Spill an annotation to the disk cache, fail-soft."""
    if path is None:
        return
    from repro.trace.io import save_annotated

    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        save_annotated(annotated, path)
    except Exception:
        pass  # unwritable cache dir: keep going without the disk layer


def get_annotated(name, trace_len=None, l2_bytes=None, seed=DEFAULT_SEED):
    """Return the (memoised) annotated trace for one workload.

    Raises
    ------
    repro.robustness.errors.ConfigError
        If *trace_len* is given but is not a positive integer.  (A
        ``trace_len=0`` must be rejected, not silently replaced by the
        default length.)
    """
    if trace_len is None:
        trace_len = default_trace_len()
    if not isinstance(trace_len, int) or isinstance(trace_len, bool) \
            or trace_len < 1:
        raise ConfigError(
            f"trace_len must be a positive integer, got {trace_len!r}",
            field="trace_len",
        )
    key = (name, trace_len, l2_bytes, seed)
    cached = _annotation_cache.get(key)
    if cached is not None:
        return cached
    disk_path = _cache_path(name, trace_len, l2_bytes, seed)
    annotated = _load_cached_annotation(disk_path)
    if annotated is None:
        trace = _get_trace(name, trace_len, seed)
        hierarchy = HierarchyConfig()
        if l2_bytes is not None:
            hierarchy = hierarchy.with_l2_size(l2_bytes)
        annotated = annotate(trace, AnnotationConfig(hierarchy=hierarchy))
        _store_cached_annotation(disk_path, annotated)
    _annotation_cache[key] = annotated
    return annotated


_trace_cache = {}


def _get_trace(name, trace_len, seed):
    key = (name, trace_len, seed)
    cached = _trace_cache.get(key)
    if cached is None:
        cached = generate_trace(name, trace_len, seed=seed)
        _trace_cache[key] = cached
    return cached


def clear_caches(disk=False):
    """Drop all memoised traces/annotations (tests use this).

    With ``disk=True`` the on-disk annotation archives are deleted as
    well; by default only the in-process memo is cleared.
    """
    _annotation_cache.clear()
    _trace_cache.clear()
    if disk:
        directory = cache_dir()
        if directory and os.path.isdir(directory):
            for entry in os.listdir(directory):
                if entry.startswith("annotated-") and entry.endswith(".npz"):
                    try:
                        os.unlink(os.path.join(directory, entry))
                    except OSError:
                        pass


@dataclasses.dataclass
class Exhibit:
    """One reproduced table or figure.

    ``tables`` is a list of ``(title, headers, rows)`` blocks; ``notes``
    carries the paper-vs-measured commentary that EXPERIMENTS.md
    records.
    """

    name: str
    title: str
    tables: list
    notes: list = dataclasses.field(default_factory=list)
    float_format: str = ".3f"

    def format(self):
        """Render every table block plus the notes as text."""
        blocks = [f"== {self.name}: {self.title} =="]
        for title, headers, rows in self.tables:
            blocks.append(
                format_table(
                    headers, rows, float_format=self.float_format, title=title
                )
            )
        if self.notes:
            blocks.append("notes:")
            blocks.extend(f"  - {note}" for note in self.notes)
        return "\n\n".join(blocks)

    def table(self, index=0):
        """Return the rows of one table block."""
        return self.tables[index][2]

    def __str__(self):
        return self.format()
