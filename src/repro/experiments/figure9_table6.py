"""Figure 9 + Table 6: last-value prediction of missing loads.

Table 6 reports the 16K-entry last-value predictor's outcome mix over
missing loads (Correct / Wrong / No Predict); Figure 9 reports the MLP
improvement from adding that predictor to the same three machines as
Figure 8.  The paper's findings to reproduce: the database workload has
the best value locality (42% correct) and gains 4-9% MLP, most of it on
the runahead machine; for the other workloads value prediction is only
worthwhile combined with runahead.
"""

import dataclasses

import numpy as np

from repro.analysis.sweep import sweep
from repro.core.config import MachineConfig
from repro.experiments.common import (
    DISPLAY_NAMES,
    Exhibit,
    WORKLOAD_NAMES,
    get_annotated,
)

_VP_CODES = {"Correct": 0, "Wrong": 1, "No Predict": 2}


def machine_grid(max_runahead=2048):
    """The Figure 8 machines, each with and without value prediction."""
    base = [
        ("64D/rob64", MachineConfig.named("64D")),
        ("64D/rob256", MachineConfig.named("64D", rob=256)),
        ("RAE", MachineConfig.runahead_machine(max_runahead=max_runahead)),
    ]
    grid = []
    for label, machine in base:
        grid.append((label, machine))
        grid.append(
            (f"{label}+VP", dataclasses.replace(machine, value_prediction=True))
        )
    return grid


def run(trace_len=None, max_runahead=2048):
    """Reproduce Figure 9 and Table 6; returns an :class:`Exhibit`."""
    table6_rows = []
    figure9_rows = []
    notes = []
    for name in WORKLOAD_NAMES:
        annotated = get_annotated(name, trace_len)

        # Table 6: predictor outcome mix over measured missing loads.
        start, stop = annotated.measured_region()
        outcomes = np.asarray(annotated.vp_outcome[start:stop])
        lookups = int(np.count_nonzero(outcomes >= 0))
        mix = []
        for _label, code in _VP_CODES.items():
            count = int(np.count_nonzero(outcomes == code))
            mix.append(count / lookups if lookups else 0.0)
        table6_rows.append([DISPLAY_NAMES[name]] + mix)

        # Figure 9: MLP gain from value prediction per machine.
        result = sweep(annotated, machine_grid(max_runahead))
        row = [DISPLAY_NAMES[name]]
        for label in ("64D/rob64", "64D/rob256", "RAE"):
            base = result.mlp(label)
            with_vp = result.mlp(f"{label}+VP")
            row.append(with_vp / base - 1 if base else 0.0)
        figure9_rows.append(row)
        notes.append(
            f"{DISPLAY_NAMES[name]}: VP gain on RAE = {row[3]:+.1%}"
            " (paper: VP pays mainly with runahead; database gains most)"
        )

    return Exhibit(
        name="Figure 9 / Table 6",
        title="Missing-load last-value prediction",
        tables=[
            (
                "Table 6: value predictor statistics (fraction of missing"
                " loads)",
                ["Benchmark", "Correct", "Wrong", "No Predict"],
                table6_rows,
            ),
            (
                "Figure 9: MLP improvement from value prediction",
                ["Benchmark", "64D rob64", "64D rob256", "RAE"],
                figure9_rows,
            ),
        ],
        notes=notes,
    )
