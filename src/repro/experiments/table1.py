"""Table 1: on-chip and off-chip components of CPI.

For each workload and off-chip latency (200 and 1000 cycles), the
cycle-accurate simulator measures overall CPI (realistic L2) and
CPI_perf (perfect L2) on the default 64C machine; Overlap_CM is then
derived from Equation 2 exactly as the paper's methodology prescribes.
The paper's headline observations to reproduce: CPI_off-chip dominates
the database workload at 1000 cycles (3x CPI_on-chip in the paper),
Overlap_CM is small everywhere (conventional out-of-order hides little
memory time under compute), and MLP sits in the 1.1-1.4 range.
"""

from repro.analysis.sweep import sweep_cyclesim
from repro.core.config import MachineConfig
from repro.cyclesim import CycleSimConfig
from repro.experiments.common import (
    DISPLAY_NAMES,
    Exhibit,
    WORKLOAD_NAMES,
    get_annotated,
)
from repro.perf.cpi_model import cpi_breakdown


def run(trace_len=None, latencies=(200, 1000), machine=None):
    """Reproduce Table 1; returns an :class:`Exhibit`."""
    machine = machine or MachineConfig()  # the paper's default 64C
    rows = []
    for name in WORKLOAD_NAMES:
        annotated = get_annotated(name, trace_len)
        # One sweep-backend call per workload covers every
        # (latency, perfect-L2) cell of the table.
        pairs = []
        for latency in latencies:
            pairs.append((
                f"p{latency}",
                CycleSimConfig.from_machine(machine, miss_penalty=latency),
            ))
            pairs.append((
                f"p{latency}/perfL2",
                CycleSimConfig.from_machine(
                    machine, miss_penalty=latency, perfect_l2=True
                ),
            ))
        grid = sweep_cyclesim(annotated, pairs, workload=name).results
        for latency in latencies:
            real = grid[f"p{latency}"]
            perfect = grid[f"p{latency}/perfL2"]
            miss_rate = real.offchip_accesses / real.instructions
            breakdown = cpi_breakdown(
                cpi=real.cpi,
                cpi_perf=perfect.cpi,
                miss_rate=miss_rate,
                miss_penalty=latency,
                mlp=real.mlp,
            )
            rows.append(
                [
                    DISPLAY_NAMES[name],
                    latency,
                    breakdown.cpi,
                    breakdown.on_chip,
                    breakdown.off_chip,
                    annotated.l2_load_miss_rate_per_100(),
                    real.mlp,
                    breakdown.overlap_cm,
                ]
            )

    notes = []
    by_workload = {}
    for row in rows:
        by_workload.setdefault(row[0], []).append(row)
    db_rows = by_workload.get("Database", [])
    if db_rows:
        last = db_rows[-1]
        if last[3] > 0:
            notes.append(
                f"database off-chip/on-chip CPI ratio at {last[1]} cycles:"
                f" {last[4] / last[3]:.2f} (paper: >3x at 1000 cycles)"
            )

    return Exhibit(
        name="Table 1",
        title="Measurements of On-Chip and Off-Chip Components of CPI",
        tables=[
            (
                None,
                [
                    "Benchmark",
                    "Off-Chip Latency",
                    "CPI",
                    "CPI_on-chip",
                    "CPI_off-chip",
                    "L2 Miss Rate /100",
                    "MLP",
                    "Overlap_CM",
                ],
                rows,
            )
        ],
        notes=notes,
    )
