"""Figure 7: impact of L2 cache size on MLP.

The traces are re-annotated under a range of L2 capacities (the events
change: fewer references leave the chip as the L2 grows), and MLPsim
runs the default 64C machine over each.

Scaling note: the paper sweeps 512KB-8MB over 100M-instruction traces.
Our traces are ~1000x shorter, so the cache-sensitive part of each
working set (the recently-reused rows/objects/descriptors plus the hot
code) is correspondingly smaller, and the capacity range where the L2
sweep bites moves down to roughly 128KB-1MB; above that the curves
flatten exactly as the paper's do toward 8MB.  The default sweep
therefore covers 128KB-2MB (a 16x span, like the paper's).

The paper's directional finding — MLP falls with a bigger L2 for the
database workload and SPECjbb2000 (the eliminated misses thin out
clusters) but rises for SPECweb99 (the eliminated misses were isolated,
low-MLP epochs) — is a second-order effect of where the marginal misses
sit; at reproduction scale the magnitudes are small and the note lines
report whatever direction was measured.
"""

from repro.core.config import MachineConfig
from repro.core.mlpsim import simulate
from repro.experiments.common import (
    DISPLAY_NAMES,
    Exhibit,
    WORKLOAD_NAMES,
    get_annotated,
)

L2_SIZES = (
    128 * 1024,
    256 * 1024,
    512 * 1024,
    1024 * 1024,
    2 * 1024 * 1024,
)


def _size_label(size):
    if size < 1024 * 1024:
        return f"{size // 1024}KB"
    return f"{size // (1024 * 1024)}MB"


def run(trace_len=None, l2_sizes=L2_SIZES, machine=None):
    """Reproduce Figure 7; returns an :class:`Exhibit`."""
    machine = machine or MachineConfig()  # default 64C
    rows = []
    notes = []
    for name in WORKLOAD_NAMES:
        mlps = []
        rates = []
        for l2 in l2_sizes:
            annotated = get_annotated(name, trace_len, l2_bytes=l2)
            result = simulate(annotated, machine)
            mlps.append(result.mlp)
            rates.append(annotated.l2_load_miss_rate_per_100())
        rows.append([DISPLAY_NAMES[name], "MLP"] + mlps)
        rows.append([DISPLAY_NAMES[name], "miss/100"] + rates)
        direction = "falls" if mlps[-1] < mlps[0] else "rises"
        notes.append(
            f"{DISPLAY_NAMES[name]}: misses {rates[0]:.2f} -> {rates[-1]:.2f}"
            f" per 100 insts across the sweep; MLP {direction} with L2 size"
        )
    notes.append(
        "paper direction: MLP falls with L2 size for database/SPECjbb2000,"
        " rises for SPECweb99; at reproduction trace lengths the"
        " cache-sensitive working sets are small (see module docstring),"
        " so the sweep range is scaled down and the MLP movement is mild"
    )
    headers = ["Benchmark", "Metric"] + [_size_label(s) for s in l2_sizes]
    return Exhibit(
        name="Figure 7",
        title="Impact of L2 cache size (capacity range scaled with trace"
        " length)",
        tables=[(None, headers, rows)],
        notes=notes,
    )
