"""Figure 4: impact of ROB size and issue constraints on MLP.

MLP as a function of ROB/issue-window size (16-256, sizes equal) for
the five issue configurations of Table 2.  The paper's trends to
reproduce: MLP grows with window size; relaxing issue constraints
matters more at larger windows; serializing instructions (config D vs
E) become the most serious impediment at large windows, especially for
SPECjbb2000; out-of-order branches (C vs D) matter from ~128 entries.
"""

from repro.analysis.sweep import sweep
from repro.core.config import MachineConfig
from repro.experiments.common import (
    DISPLAY_NAMES,
    Exhibit,
    WORKLOAD_NAMES,
    get_annotated,
)

SIZES = (16, 32, 64, 128, 256)
CONFIGS = "ABCDE"


def machine_grid(sizes=SIZES, configs=CONFIGS):
    """The (label, machine) grid of this figure."""
    return [
        (f"{size}{letter}", MachineConfig.named(f"{size}{letter}"))
        for size in sizes
        for letter in configs
    ]


def run(trace_len=None, sizes=SIZES, configs=CONFIGS):
    """Reproduce Figure 4; returns an :class:`Exhibit`."""
    tables = []
    notes = []
    for name in WORKLOAD_NAMES:
        annotated = get_annotated(name, trace_len)
        result = sweep(annotated, machine_grid(sizes, configs))
        rows = []
        for size in sizes:
            row = [size]
            row.extend(result.mlp(f"{size}{letter}") for letter in configs)
            rows.append(row)
        tables.append(
            (
                DISPLAY_NAMES[name],
                ["ROB/IW"] + [f"Config {c}" for c in configs],
                rows,
            )
        )
        if "E" in configs and "D" in configs and 256 in sizes:
            gain = result.mlp("256E") / result.mlp("256D") - 1
            notes.append(
                f"{DISPLAY_NAMES[name]}: removing serialization (256D->256E)"
                f" = +{gain:.0%} MLP"
            )
    notes.append(
        "paper trends: MLP monotone in window size; constraint relaxation"
        " pays off mainly at large windows; serializing instructions are"
        " the most serious large-window impediment (esp. SPECjbb2000)"
    )
    return Exhibit(
        name="Figure 4",
        title="Impact of ROB size and issuing constraints",
        tables=tables,
        notes=notes,
    )
