"""Ablation studies beyond the paper's exhibits.

Four sweeps quantify design choices the paper leaves implicit or names
as future work:

* **MSHR file size** — the paper assumes miss-handling resources are
  never the bottleneck; this sweep shows how many outstanding-miss
  entries the measured MLP actually requires.
* **Store-buffer size** — Section 7 names "store MLP for applications
  where a finite store buffer limits performance" as future work; this
  sweep measures store MLP and the knee below which the store buffer
  interferes with load MLP.
* **Slow unresolvable-branch predictor** — Section 3.2.4 suggests a
  special (slow but accurate) predictor for miss-dependent branches;
  this sweep maps its accuracy to MLP, bounded above by perfect BP.
* **Runahead distance** — Section 5.4.1 notes "the maximum runahead
  distance is dependent on the off-chip access latency"; this sweep
  shows where each workload's runahead MLP saturates.
"""

import dataclasses

from repro.core.config import MachineConfig
from repro.core.mlpsim import simulate
from repro.core.termination import Inhibitor
from repro.experiments.common import (
    DISPLAY_NAMES,
    Exhibit,
    WORKLOAD_NAMES,
    get_annotated,
)
from repro.robustness.errors import ConfigError

MSHR_SIZES = (1, 2, 4, 8, 16, 32, None)
STORE_BUFFER_SIZES = (1, 2, 4, 8, 16, None)
SLOW_BP_ACCURACIES = (0.0, 0.25, 0.5, 0.75, 0.9, 1.0)
RUNAHEAD_DISTANCES = (64, 128, 256, 512, 1024, 2048, 4096)


def _size_label(value):
    return "inf" if value is None else str(value)


def ablation_mshr(trace_len=None, sizes=MSHR_SIZES):
    """MLP vs MSHR file size, on the default and runahead machines."""
    rows = []
    notes = []
    for name in WORKLOAD_NAMES:
        annotated = get_annotated(name, trace_len)
        for base_label, base in (
            ("64C", MachineConfig.named("64C")),
            ("RAE", MachineConfig.runahead_machine()),
        ):
            row = [DISPLAY_NAMES[name], base_label]
            for cap in sizes:
                machine = dataclasses.replace(base, max_outstanding=cap)
                row.append(simulate(annotated, machine).mlp)
            rows.append(row)
            knee = next(
                (
                    _size_label(cap)
                    for cap, mlp in zip(sizes, row[2:])
                    if mlp >= 0.98 * row[-1]
                ),
                "inf",
            )
            notes.append(
                f"{DISPLAY_NAMES[name]}/{base_label}: {knee} MSHRs reach"
                " 98% of the unbounded MLP"
            )
    headers = ["Benchmark", "Machine"] + [
        f"mshr={_size_label(s)}" for s in sizes
    ]
    return Exhibit(
        name="Ablation: MSHR file size",
        title="How many outstanding-miss entries the MLP actually needs",
        tables=[(None, headers, rows)],
        notes=notes,
    )


def ablation_store_buffer(trace_len=None, sizes=STORE_BUFFER_SIZES):
    """Load MLP and store MLP vs store-buffer size (Section 7 future work)."""
    tables = []
    notes = []
    for name in WORKLOAD_NAMES:
        annotated = get_annotated(name, trace_len)
        rows = []
        for cap in sizes:
            machine = MachineConfig.named("64C", store_buffer=cap)
            result = simulate(annotated, machine)
            rows.append(
                [
                    _size_label(cap),
                    result.mlp,
                    result.store_mlp,
                    result.store_accesses,
                    result.inhibitors.as_dict()[Inhibitor.STORE_BUFFER],
                ]
            )
        tables.append(
            (
                DISPLAY_NAMES[name],
                ["SB entries", "MLP", "store MLP", "store accesses",
                 "SB-blocked epochs"],
                rows,
            )
        )
        if rows[0][1] < rows[-1][1] * 0.995:
            notes.append(
                f"{DISPLAY_NAMES[name]}: a 1-entry store buffer costs"
                f" {1 - rows[0][1] / rows[-1][1]:.1%} MLP"
            )
    notes.append(
        "store misses never count toward (load) MLP — the store buffer"
        " interferes only by blocking younger work, as Section 7 anticipates"
    )
    return Exhibit(
        name="Ablation: store buffer",
        title="Store MLP and the cost of finite store buffering",
        tables=tables,
        notes=notes,
    )


def ablation_slow_bp(trace_len=None, accuracies=SLOW_BP_ACCURACIES):
    """MLP vs slow unresolvable-branch-predictor accuracy (Section 3.2.4)."""
    rows = []
    notes = []
    for name in WORKLOAD_NAMES:
        annotated = get_annotated(name, trace_len)
        base = MachineConfig.runahead_machine()
        row = [DISPLAY_NAMES[name]]
        for accuracy in accuracies:
            machine = dataclasses.replace(
                base,
                slow_branch_predictor=accuracy > 0,
                slow_bp_accuracy=accuracy,
            )
            row.append(simulate(annotated, machine).mlp)
        perfect = simulate(
            annotated, dataclasses.replace(base, perfect_branch=True)
        ).mlp
        row.append(perfect)
        rows.append(row)
        captured = (
            (row[-2] - row[1]) / (perfect - row[1])
            if perfect > row[1]
            else 1.0
        )
        notes.append(
            f"{DISPLAY_NAMES[name]}: a 100%-accurate slow predictor captures"
            f" {captured:.0%} of the perfect-BP headroom"
        )
    headers = ["Benchmark"] + [f"acc={a:.0%}" for a in accuracies]
    headers.append("perfect BP")
    notes.append(
        "the residual gap to perfect BP comes from wrong-path epochs the"
        " slow predictor is consulted too late to avoid entirely"
    )
    return Exhibit(
        name="Ablation: slow unresolvable-branch predictor",
        title="Section 3.2.4's suggestion, quantified on the RAE machine",
        tables=[(None, headers, rows)],
        notes=notes,
    )


def ablation_runahead_distance(trace_len=None, distances=RUNAHEAD_DISTANCES):
    """MLP vs maximum runahead distance (Section 5.4.1's 2048 choice)."""
    rows = []
    notes = []
    for name in WORKLOAD_NAMES:
        annotated = get_annotated(name, trace_len)
        row = [DISPLAY_NAMES[name]]
        for distance in distances:
            machine = MachineConfig.runahead_machine(max_runahead=distance)
            row.append(simulate(annotated, machine).mlp)
        rows.append(row)
        saturation = next(
            (
                d
                for d, mlp in zip(distances, row[1:])
                if mlp >= 0.95 * row[-1]
            ),
            distances[-1],
        )
        notes.append(
            f"{DISPLAY_NAMES[name]}: 95% of the {distances[-1]}-distance MLP"
            f" is reached by distance {saturation}"
        )
    headers = ["Benchmark"] + [str(d) for d in distances]
    notes.append(
        "the paper runs ahead up to 2048 instructions and notes the real"
        " bound is the off-chip latency; the saturation points above show"
        " how much of that budget each workload can use"
    )
    return Exhibit(
        name="Ablation: runahead distance",
        title="Where runahead MLP saturates per workload",
        tables=[(None, headers, rows)],
        notes=notes,
    )


def ablation_hw_prefetch(trace_len=None, degree=2):
    """Conventional hardware prefetchers on the commercial workloads.

    Checks the paper's premise (Section 1) that these access patterns
    are "not amenable to conventional hardware or software prefetching":
    replay each trace with a next-line and a PC-stride prefetcher and
    measure miss coverage and prefetch accuracy.
    """
    from repro.experiments.common import _get_trace
    from repro.memory.prefetcher import (
        NextLinePrefetcher,
        StridePrefetcher,
        run_prefetch_study,
    )
    from repro.experiments.common import DEFAULT_SEED, default_trace_len

    trace_len = trace_len or default_trace_len()
    rows = []
    notes = []
    for name in WORKLOAD_NAMES:
        trace = _get_trace(name, trace_len, DEFAULT_SEED)
        reference = run_prefetch_study(trace, None)
        for label, prefetcher in (
            ("next-line", NextLinePrefetcher(degree=degree)),
            ("stride", StridePrefetcher(degree=degree)),
        ):
            study = run_prefetch_study(trace, prefetcher)
            removed = (
                1.0 - study.remaining_misses / reference.remaining_misses
                if reference.remaining_misses
                else 0.0
            )
            rows.append(
                [
                    DISPLAY_NAMES[name],
                    label,
                    reference.remaining_misses,
                    study.remaining_misses,
                    removed,
                    study.accuracy,
                ]
            )
        stride_removed = rows[-1][4]
        notes.append(
            f"{DISPLAY_NAMES[name]}: a stride prefetcher removes"
            f" {stride_removed:.0%} of off-chip load misses"
        )
    notes.append(
        "paper premise (Section 1): commercial access patterns are not"
        " amenable to conventional prefetching — stride coverage is low"
        " everywhere; next-line catches only the intra-cluster lines that"
        " already overlap, so even its coverage buys little MLP"
    )
    return Exhibit(
        name="Ablation: conventional hardware prefetching",
        title="The paper's 'not amenable to prefetching' premise, checked",
        tables=[
            (
                None,
                [
                    "Benchmark",
                    "Prefetcher",
                    "Misses (none)",
                    "Misses (with)",
                    "Removed",
                    "Accuracy",
                ],
                rows,
            )
        ],
        notes=notes,
    )


def ablation_intro_contrast(trace_len=None):
    """Commercial vs scientific workloads (the paper's Section 1 setup).

    The paper motivates MLP by contrasting commercial applications with
    scientific/streaming ones whose regular misses conventional
    techniques already handle.  This ablation puts the ``streaming``
    contrast workload next to the three commercial ones and measures:
    stride-prefetch coverage, in-order and out-of-order MLP, and the
    runahead gain — showing why MLP (not prefetching) is the commercial
    lever.
    """
    from repro.core.inorder import simulate_stall_on_use
    from repro.experiments.common import DEFAULT_SEED, _get_trace, default_trace_len
    from repro.memory.prefetcher import StridePrefetcher, run_prefetch_study
    from repro.trace.annotate import annotate

    trace_len = trace_len or default_trace_len()
    rows = []
    for name in list(WORKLOAD_NAMES) + ["streaming"]:
        trace = _get_trace(name, trace_len, DEFAULT_SEED)
        annotated = annotate(trace)
        study = run_prefetch_study(trace, StridePrefetcher(degree=4))
        sou = simulate_stall_on_use(annotated).mlp
        ooo = simulate(annotated, MachineConfig.named("64C")).mlp
        rae = simulate(annotated, MachineConfig.runahead_machine()).mlp
        rows.append(
            [
                DISPLAY_NAMES.get(name, name),
                study.coverage,
                sou,
                ooo,
                rae / ooo - 1,
            ]
        )
    return Exhibit(
        name="Ablation: commercial vs scientific",
        title="The Section 1 premise: why MLP is the commercial lever",
        tables=[
            (
                None,
                [
                    "Workload",
                    "Stride coverage",
                    "MLP in-order",
                    "MLP 64C",
                    "RAE gain",
                ],
                rows,
            )
        ],
        notes=[
            "the streaming (scientific) workload: stride prefetching"
            " covers nearly all of its misses and even an in-order core"
            " overlaps them — the commercial workloads show the opposite"
            " on every column, which is the gap MLP techniques fill",
        ],
    )


#: Registry used by the ablation benchmarks.
ABLATIONS = {
    "mshr": ablation_mshr,
    "store_buffer": ablation_store_buffer,
    "slow_bp": ablation_slow_bp,
    "runahead_distance": ablation_runahead_distance,
    "hw_prefetch": ablation_hw_prefetch,
    "intro_contrast": ablation_intro_contrast,
}


def run_ablation(name, **kwargs):
    """Run one ablation by name and return its :class:`Exhibit`."""
    try:
        func = ABLATIONS[name]
    except KeyError:
        raise ConfigError(
            f"unknown ablation {name!r}; expected one of {sorted(ABLATIONS)}"
        ) from None
    return func(**kwargs)
