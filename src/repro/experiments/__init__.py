"""Per-exhibit reproduction harnesses.

One module per table/figure of the paper's evaluation section.  Every
module exposes ``run(trace_len=None, ...) -> Exhibit``; the returned
exhibit renders the same rows/series the paper reports.  The benchmark
suite (``benchmarks/``) calls these and records their timings; the
``examples/reproduce_paper.py`` script runs them all and writes
EXPERIMENTS.md-style output.
"""

from repro.experiments.common import (
    DEFAULT_SEED,
    Exhibit,
    WORKLOAD_NAMES,
    default_trace_len,
    get_annotated,
)
from repro.robustness.errors import ConfigError

__all__ = [
    "DEFAULT_SEED",
    "Exhibit",
    "WORKLOAD_NAMES",
    "default_trace_len",
    "get_annotated",
]

#: Exhibit-name -> module-name map for discovery (benchmarks iterate it).
EXHIBITS = {
    "table1": "repro.experiments.table1",
    "figure2": "repro.experiments.figure2",
    "table3": "repro.experiments.table3",
    "table4": "repro.experiments.table4",
    "table5": "repro.experiments.table5",
    "figure4": "repro.experiments.figure4",
    "figure5": "repro.experiments.figure5",
    "figure6": "repro.experiments.figure6",
    "figure7": "repro.experiments.figure7",
    "figure8": "repro.experiments.figure8",
    "figure9_table6": "repro.experiments.figure9_table6",
    "figure10": "repro.experiments.figure10",
    "figure11": "repro.experiments.figure11",
}


def run_exhibit(name, **kwargs):
    """Run one exhibit by name and return its :class:`Exhibit`."""
    import importlib

    try:
        module_name = EXHIBITS[name]
    except KeyError:
        raise ConfigError(
            f"unknown exhibit {name!r}; expected one of {sorted(EXHIBITS)}"
        ) from None
    module = importlib.import_module(module_name)
    return module.run(**kwargs)
