"""Figure 8: impact of runahead execution.

Runahead (checkpoint at the trigger, convert misses to prefetches, run
up to 2048 instructions ahead) against two conventional machines: a
64-entry issue window with a 64-entry ROB and with a 256-entry ROB,
both under issue configuration D.  The paper's result to reproduce:
runahead wins big everywhere — +82%/+102%/+49% over the 64-ROB machine
— and its MLP coincides with the "INF" (2048-entry window, config E)
machine of Figure 6, because runahead is a realistic implementation of
exactly that: a huge one-shot window with serialization removed.
"""

from repro.analysis.sweep import sweep
from repro.core.config import MachineConfig
from repro.experiments.common import (
    DISPLAY_NAMES,
    Exhibit,
    WORKLOAD_NAMES,
    get_annotated,
)


def machine_grid(max_runahead=2048):
    """The machines Figure 8 compares (two conventional, RAE, INF)."""
    return [
        ("64D/rob64", MachineConfig.named("64D")),
        ("64D/rob256", MachineConfig.named("64D", rob=256)),
        ("RAE", MachineConfig.runahead_machine(max_runahead=max_runahead)),
        ("INF", MachineConfig.named("2048E")),
    ]


def run(trace_len=None, max_runahead=2048):
    """Reproduce Figure 8; returns an :class:`Exhibit`."""
    rows = []
    notes = []
    for name in WORKLOAD_NAMES:
        annotated = get_annotated(name, trace_len)
        result = sweep(annotated, machine_grid(max_runahead))
        rows.append(
            [
                DISPLAY_NAMES[name],
                result.mlp("64D/rob64"),
                result.mlp("64D/rob256"),
                result.mlp("RAE"),
                result.mlp("INF"),
            ]
        )
        gain64 = result.mlp("RAE") / result.mlp("64D/rob64") - 1
        gain256 = result.mlp("RAE") / result.mlp("64D/rob256") - 1
        notes.append(
            f"{DISPLAY_NAMES[name]}: RAE = +{gain64:.0%} over 64D/rob64,"
            f" +{gain256:.0%} over 64D/rob256"
            " (paper: +82%/+56%, +102%/+81%, +49%/+46%)"
        )
    notes.append(
        "RAE tracks the INF (2048-entry window, config E) machine, the"
        " paper's point that runahead realises a huge window cheaply"
    )
    return Exhibit(
        name="Figure 8",
        title="Impact of runahead execution",
        tables=[
            (
                None,
                ["Benchmark", "64D rob64", "64D rob256", "RAE", "INF"],
                rows,
            )
        ],
        notes=notes,
    )
