"""Figure 6: decoupling the issue window from the ROB.

For issue-window sizes {16, 32, 64, 128} and configurations A-E, MLP as
the ROB is enlarged to 1x/2x/4x/8x the issue window and to a constant
2048 entries; the rightmost "INF" bar is a 2048-entry issue window and
ROB under configuration E.  The paper's findings to reproduce: a bigger
ROB behind a small issue window buys substantial MLP (the ROB is cheap
FIFO storage, the issue window is expensive CAM); the benefit grows
with more aggressive issue configurations and is dramatic under E; the
paper quotes 64D ROB 64->256 gains of +16%/+12%/+2% and 64E ROB
64->1024 gains of +51%/+49%/+22%.
"""

from repro.analysis.sweep import sweep
from repro.core.config import MachineConfig
from repro.experiments.common import (
    DISPLAY_NAMES,
    Exhibit,
    WORKLOAD_NAMES,
    get_annotated,
)

IW_SIZES = (16, 32, 64, 128)
CONFIGS = "ABCDE"
ROB_MULTIPLES = (1, 2, 4, 8)
BIG_ROB = 2048


def machine_grid(iw_sizes=IW_SIZES, configs=CONFIGS,
                 multiples=ROB_MULTIPLES, big_rob=BIG_ROB):
    """The (label, machine) grid of Figure 6, including the INF machine."""
    grid = []
    for iw in iw_sizes:
        for letter in configs:
            for mult in multiples:
                label = f"{iw}{letter}/x{mult}"
                grid.append(
                    (label, MachineConfig.named(f"{iw}{letter}", rob=iw * mult))
                )
            grid.append(
                (
                    f"{iw}{letter}/{big_rob}",
                    MachineConfig.named(f"{iw}{letter}", rob=big_rob),
                )
            )
    grid.append(("INF", MachineConfig.named(f"{big_rob}E")))
    return grid


def run(trace_len=None, iw_sizes=IW_SIZES, configs=CONFIGS):
    """Reproduce Figure 6; returns an :class:`Exhibit`."""
    tables = []
    notes = []
    for name in WORKLOAD_NAMES:
        annotated = get_annotated(name, trace_len)
        result = sweep(annotated, machine_grid(iw_sizes, configs))
        rows = []
        for iw in iw_sizes:
            for letter in configs:
                row = [f"{iw}{letter}"]
                row.extend(
                    result.mlp(f"{iw}{letter}/x{m}") for m in ROB_MULTIPLES
                )
                row.append(result.mlp(f"{iw}{letter}/{BIG_ROB}"))
                rows.append(row)
        rows.append(
            ["INF", None, None, None, None, result.mlp("INF")]
        )
        tables.append(
            (
                DISPLAY_NAMES[name],
                ["IW/Cfg"]
                + [f"ROB {m}X" for m in ROB_MULTIPLES]
                + [f"ROB {BIG_ROB}"],
                rows,
            )
        )
        if 64 in iw_sizes and "D" in configs:
            gain = result.mlp("64D/x4") / result.mlp("64D/x1") - 1
            notes.append(
                f"{DISPLAY_NAMES[name]}: 64D ROB 64->256 = +{gain:.0%} MLP"
                " (paper: +16%/+12%/+2%)"
            )
    notes.append(
        "paper finding: enlarging the (cheap, FIFO) ROB behind a fixed"
        " issue window exploits MLP far more efficiently than growing the"
        " (CAM) issue window, dramatically so under configuration E"
    )
    return Exhibit(
        name="Figure 6",
        title="Impact of decoupling issue window and ROB sizes",
        tables=tables,
        notes=notes,
    )
