"""Table 4: estimated vs measured CPI.

The paper's second validation: estimate a configuration's CPI by
plugging its MLPsim-measured MLP and miss rate into Equation 2, with
CPI_perf and Overlap_CM measured by the cycle simulator — both for the
same configuration (the paper's bold numbers) and, crucially, borrowed
from a *different* configuration (how one predicts machines that the
cycle simulator does not implement).  The paper's claim to reproduce:
all estimates land within 2% of the measured CPI.
"""

from repro.analysis.sweep import sweep_cyclesim
from repro.core.config import MachineConfig
from repro.core.mlpsim import simulate
from repro.cyclesim import CycleSimConfig
from repro.experiments.common import (
    DISPLAY_NAMES,
    Exhibit,
    WORKLOAD_NAMES,
    get_annotated,
)
from repro.perf.cpi_model import derive_overlap_cm, estimate_cpi


def run(trace_len=None, size=64, configs="ABC", miss_penalty=1000):
    """Reproduce Table 4; returns an :class:`Exhibit`."""
    rows = []
    worst_error = 0.0
    for name in WORKLOAD_NAMES:
        annotated = get_annotated(name, trace_len)
        # Real and perfect-L2 runs for every config letter, through the
        # sweep backend in one call per workload.
        pairs = []
        for letter in configs:
            machine = MachineConfig.named(f"{size}{letter}")
            pairs.append((
                f"{size}{letter}/p{miss_penalty}",
                CycleSimConfig.from_machine(
                    machine, miss_penalty=miss_penalty
                ),
            ))
            pairs.append((
                f"{size}{letter}/p{miss_penalty}/perfL2",
                CycleSimConfig.from_machine(
                    machine, miss_penalty=miss_penalty, perfect_l2=True
                ),
            ))
        grid = sweep_cyclesim(annotated, pairs, workload=name).results
        measured = {}
        anchors = {}  # config letter -> (cpi_perf, overlap_cm)
        mlpsim = {}
        for letter in configs:
            machine = MachineConfig.named(f"{size}{letter}")
            real = grid[f"{size}{letter}/p{miss_penalty}"]
            perfect = grid[f"{size}{letter}/p{miss_penalty}/perfL2"]
            result = simulate(annotated, machine)
            miss_rate = result.accesses / result.instructions
            overlap = derive_overlap_cm(
                real.cpi, perfect.cpi, miss_rate, miss_penalty, result.mlp
            )
            measured[letter] = real.cpi
            anchors[letter] = (perfect.cpi, overlap)
            mlpsim[letter] = (result.mlp, miss_rate)

        for letter in configs:
            mlp, miss_rate = mlpsim[letter]
            row = [DISPLAY_NAMES[name], letter]
            for anchor in configs:
                cpi_perf, overlap = anchors[anchor]
                estimate = estimate_cpi(
                    cpi_perf, overlap, miss_rate, miss_penalty, mlp
                )
                row.append(estimate)
                error = abs(estimate - measured[letter]) / measured[letter]
                worst_error = max(worst_error, error)
            row.append(measured[letter])
            rows.append(row)

    headers = ["Benchmark", "Config"]
    headers += [f"Est. via {anchor}" for anchor in configs]
    headers += ["Measured"]
    return Exhibit(
        name="Table 4",
        title="Estimated (Eq. 2 + MLPsim) vs measured CPI"
        f" (IW/ROB={size}, {miss_penalty}-cycle latency)",
        tables=[(None, headers, rows)],
        notes=[
            f"worst estimation error: {worst_error:.1%}"
            " (paper: within 2% in all cases)",
        ],
    )
