"""Table 5: MLP of in-order issue.

Stall-on-miss vs stall-on-use MLP for the three workloads, plus the
comparison the paper draws in the text: the default out-of-order 64C
machine improves MLP over in-order stall-on-use by ~30% (database),
~12% (SPECjbb2000) and ~13% (SPECweb99).  SPECweb99's in-order MLP is
noticeably above 1.0 because of its useful software prefetches.
"""

from repro.core.config import MachineConfig
from repro.core.inorder import simulate_stall_on_miss, simulate_stall_on_use
from repro.core.mlpsim import simulate
from repro.experiments.common import (
    DISPLAY_NAMES,
    Exhibit,
    WORKLOAD_NAMES,
    get_annotated,
)


def run(trace_len=None):
    """Reproduce Table 5; returns an :class:`Exhibit`."""
    rows = []
    notes = []
    for name in WORKLOAD_NAMES:
        annotated = get_annotated(name, trace_len)
        som = simulate_stall_on_miss(annotated)
        sou = simulate_stall_on_use(annotated)
        ooo = simulate(annotated, MachineConfig.named("64C"))
        rows.append([DISPLAY_NAMES[name], som.mlp, sou.mlp, ooo.mlp])
        if sou.mlp:
            notes.append(
                f"{DISPLAY_NAMES[name]}: 64C over stall-on-use ="
                f" +{(ooo.mlp / sou.mlp - 1):.0%}"
                " (paper: +30% / +12% / +13%)"
            )
    notes.append(
        "stall-on-use >= stall-on-miss everywhere; SPECweb99 in-order MLP"
        " is lifted by useful software prefetches (as in the paper)"
    )
    return Exhibit(
        name="Table 5",
        title="MLP of In-Order Issue",
        tables=[
            (
                None,
                ["Benchmark", "Stall-on-Miss", "Stall-on-Use", "OoO 64C"],
                rows,
            )
        ],
        notes=notes,
    )
