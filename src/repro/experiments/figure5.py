"""Figure 5: factors inhibiting further MLP.

For a grid of window sizes and issue configurations, the fraction of
epochs charged to each MLP-inhibiting condition: Imiss start, Maxwin,
mispredicted branch, Imiss end, missing load (config A only), dependent
store (A/B only), serialize.  The paper's observations to reproduce:
I-miss triggers are ~12-18% of database epochs and ~10-13% of SPECweb99
epochs (and absent for SPECjbb2000); beyond 32-entry windows Maxwin is
at most ~half of the inhibitors; at large windows the serializing
constraint dominates, especially for SPECjbb2000.
"""

from repro.analysis.sweep import sweep
from repro.core.config import MachineConfig
from repro.core.termination import FIGURE5_ORDER
from repro.experiments.common import (
    DISPLAY_NAMES,
    Exhibit,
    WORKLOAD_NAMES,
    get_annotated,
)

SIZES = (32, 64, 128, 256)
CONFIGS = "ABCDE"


def run(trace_len=None, sizes=SIZES, configs=CONFIGS):
    """Reproduce Figure 5; returns an :class:`Exhibit`."""
    tables = []
    notes = []
    for name in WORKLOAD_NAMES:
        annotated = get_annotated(name, trace_len)
        grid = [
            (f"{size}{letter}", MachineConfig.named(f"{size}{letter}"))
            for size in sizes
            for letter in configs
        ]
        result = sweep(annotated, grid)
        rows = []
        for size in sizes:
            for letter in configs:
                breakdown = result.results[f"{size}{letter}"].inhibitor_breakdown()
                rows.append(
                    [f"{size}{letter}"]
                    + [breakdown[inhibitor] for inhibitor in FIGURE5_ORDER]
                )
        tables.append(
            (
                DISPLAY_NAMES[name],
                ["Size/Cfg"] + [i.value for i in FIGURE5_ORDER],
                rows,
            )
        )
        # Note the I-miss trigger share on the default machine.
        imiss_share = result.results["64C"].inhibitor_breakdown()[
            FIGURE5_ORDER[0]
        ]
        notes.append(
            f"{DISPLAY_NAMES[name]}: imiss_start = {imiss_share:.0%} of 64C"
            " epochs (paper: 12-18% database, ~0% SPECjbb2000,"
            " 10-13% SPECweb99)"
        )
    return Exhibit(
        name="Figure 5",
        title="Factors inhibiting further MLP (fraction of epochs)",
        tables=tables,
        notes=notes,
    )
