"""Fail-soft batch execution of the paper's exhibits.

``python -m repro exhibit all`` used to die on the first exhibit that
raised, losing every later table of a long campaign.  This runner
executes each exhibit in isolation, catches per-exhibit failures
(including an optional per-exhibit wall-clock timeout), and reports a
pass/fail summary at the end — mirroring how large simulation
campaigns handle partial failure: one bad configuration must not sink
the batch.
"""

import contextlib
import dataclasses
import os
import time
import traceback

from repro.experiments import EXHIBITS, run_exhibit
from repro.robustness.errors import ExhibitTimeout
from repro.robustness.supervisor import wall_clock_deadline


@dataclasses.dataclass
class ExhibitOutcome:
    """Result of one exhibit attempt in a fail-soft batch."""

    name: str
    ok: bool
    seconds: float
    exhibit: object = None
    error: str = None
    traceback: str = None

    @property
    def status(self):
        """``"ok"`` or ``"FAILED"``, for the summary table."""
        return "ok" if self.ok else "FAILED"


@contextlib.contextmanager
def _deadline(seconds, name):
    """Raise :class:`ExhibitTimeout` if the body runs past *seconds*.

    A thin wrapper over the supervisor's SIGALRM-based
    :func:`~repro.robustness.supervisor.wall_clock_deadline` (shared
    with the per-config sweep timeouts), so nested budgets — an
    exhibit deadline around a supervised sweep's config deadline —
    compose instead of clobbering each other.  On platforms without
    ``SIGALRM`` (or off the main thread) the body runs unbounded; the
    batch still fail-softs on ordinary exceptions.
    """
    with wall_clock_deadline(
        seconds,
        lambda budget: ExhibitTimeout(
            f"exhibit exceeded its {budget:g}s wall-clock budget",
            field=name,
        ),
    ):
        yield


def run_exhibits(names=None, timeout=None, progress=None, jobs=None,
                 **kwargs):
    """Run *names* (default: every exhibit) fail-soft.

    Parameters
    ----------
    names:
        Exhibit names; ``None``, an empty list, or the single name
        ``"all"`` runs the full registry in order.  Unknown names are
        recorded as failures, not raised — the rest of the batch still
        runs.
    timeout:
        Optional per-exhibit wall-clock budget in seconds.
    progress:
        Optional callable invoked with each :class:`ExhibitOutcome` as
        it completes (the CLI prints the exhibit or the error here).
    jobs:
        Optional worker-process count for the configuration sweeps
        inside each exhibit (``0`` = one per CPU).  Exported as
        ``REPRO_JOBS`` for the duration of the batch so every nested
        :func:`repro.analysis.sweep.sweep` call picks it up; the
        previous value is restored afterwards.
    kwargs:
        Forwarded to each exhibit's ``run`` (e.g. ``trace_len``).

    Returns
    -------
    list of ExhibitOutcome
        One entry per requested exhibit, in request order.
    """
    if not names or list(names) == ["all"]:
        names = list(EXHIBITS)
    saved_jobs = os.environ.get("REPRO_JOBS")
    if jobs is not None:
        os.environ["REPRO_JOBS"] = str(jobs)
    outcomes = []
    try:
        for name in names:
            started = time.time()
            try:
                with _deadline(timeout, name):
                    exhibit = run_exhibit(name, **kwargs)
                outcome = ExhibitOutcome(
                    name=name, ok=True, seconds=time.time() - started,
                    exhibit=exhibit,
                )
            except KeyboardInterrupt:
                raise
            except Exception as error:
                outcome = ExhibitOutcome(
                    name=name, ok=False, seconds=time.time() - started,
                    error=f"{type(error).__name__}: {error}",
                    traceback=traceback.format_exc(),
                )
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
    finally:
        if jobs is not None:
            if saved_jobs is None:
                os.environ.pop("REPRO_JOBS", None)
            else:
                os.environ["REPRO_JOBS"] = saved_jobs
    return outcomes


def format_summary(outcomes):
    """Render the per-exhibit pass/fail summary table."""
    passed = sum(1 for o in outcomes if o.ok)
    lines = [
        f"== exhibit summary: {passed}/{len(outcomes)} passed ==",
    ]
    width = max((len(o.name) for o in outcomes), default=4)
    for outcome in outcomes:
        line = f"  {outcome.name:<{width}}  {outcome.status:<6}" \
               f" {outcome.seconds:7.1f}s"
        if outcome.error:
            line += f"  {outcome.error}"
        lines.append(line)
    return "\n".join(lines)
