"""Table 3: MLPsim vs cycle-accurate simulator.

The validation experiment: for ROB/issue-window sizes {32, 64, 128},
issue configurations A-C, and off-chip latencies {200, 500, 1000}, MLP
from the cycle simulator should approach the (timing-free) MLPsim value
as latency grows, becoming almost identical at 1000 cycles.  This is
the paper's evidence that the epoch model and its window-termination
rules are complete.
"""

from repro.analysis.sweep import sweep_cyclesim
from repro.core.config import MachineConfig
from repro.core.mlpsim import simulate
from repro.cyclesim import CycleSimConfig
from repro.experiments.common import (
    DISPLAY_NAMES,
    Exhibit,
    WORKLOAD_NAMES,
    get_annotated,
)


def run(trace_len=None, sizes=(32, 64, 128), configs="ABC",
        latencies=(200, 500, 1000)):
    """Reproduce Table 3; returns an :class:`Exhibit`."""
    rows = []
    worst_gap = 0.0
    for name in WORKLOAD_NAMES:
        annotated = get_annotated(name, trace_len)
        # The whole 27-config cyclesim grid goes through the sweep
        # backend in one call: one shared cycle plan, kernel-batched
        # serially or fanned out across workers under REPRO_JOBS.
        pairs = [
            (
                f"{size}{letter}/p{latency}",
                CycleSimConfig.from_machine(
                    MachineConfig.named(f"{size}{letter}"),
                    miss_penalty=latency,
                ),
            )
            for size in sizes
            for letter in configs
            for latency in latencies
        ]
        grid = sweep_cyclesim(annotated, pairs, workload=name).results
        for size in sizes:
            for letter in configs:
                machine = MachineConfig.named(f"{size}{letter}")
                mlpsim = simulate(annotated, machine).mlp
                row = [DISPLAY_NAMES[name], size, letter]
                for latency in latencies:
                    row.append(grid[f"{size}{letter}/p{latency}"].mlp)
                row.append(mlpsim)
                rows.append(row)
                if mlpsim:
                    gap = abs(row[-2] - mlpsim) / mlpsim  # longest latency
                    worst_gap = max(worst_gap, gap)

    headers = ["Benchmark", "ROB/IW", "Config"]
    headers += [f"CycleSim {lat}" for lat in latencies]
    headers += ["MLPsim"]
    return Exhibit(
        name="Table 3",
        title="MLP from MLPsim vs the cycle-accurate simulator",
        tables=[(None, headers, rows)],
        notes=[
            f"worst MLPsim-vs-cyclesim gap at {latencies[-1]} cycles:"
            f" {worst_gap:.1%} (paper: 'almost identical' at 1000 cycles)",
        ],
    )
