"""Figure 11: overall performance improvement.

The MLP gains of Sections 5.3-5.6 translated back to performance: CPI
for a sample of configurations is estimated with Equation 2 (MLPsim MLP
and miss rate; cycle-simulator CPI_perf and Overlap_CM, measured once
on the 64D anchor machine) at a 1000-cycle off-chip latency, and
reported as percentage improvement over the 64D baseline.  The paper's
headline numbers to reproduce in shape: runahead improves overall
performance by ~60%/44%/11%, and runahead plus perfect branch and value
prediction by ~174%/103%/21%.
"""

import dataclasses

from repro.analysis.sweep import sweep
from repro.core.config import MachineConfig
from repro.cyclesim import CycleSimConfig, run_cyclesim
from repro.experiments.common import (
    DISPLAY_NAMES,
    Exhibit,
    WORKLOAD_NAMES,
    get_annotated,
)
from repro.perf.cpi_model import derive_overlap_cm, estimate_cpi

MISS_PENALTY = 1000


def machine_grid():
    """The (label, machine) sample of configurations Figure 11 ranks."""
    rae = MachineConfig.runahead_machine()
    return [
        ("64D", MachineConfig.named("64D")),
        ("64E", MachineConfig.named("64E")),
        ("64D/rob256", MachineConfig.named("64D", rob=256)),
        ("256D", MachineConfig.named("256D")),
        ("RAE", rae),
        ("RAE.perfI", dataclasses.replace(rae, perfect_ifetch=True)),
        ("RAE.perfVP", dataclasses.replace(rae, perfect_value=True)),
        ("RAE.perfBP", dataclasses.replace(rae, perfect_branch=True)),
        (
            "RAE.perfVP.perfBP",
            dataclasses.replace(rae, perfect_value=True, perfect_branch=True),
        ),
    ]


def run(trace_len=None, miss_penalty=MISS_PENALTY):
    """Reproduce Figure 11; returns an :class:`Exhibit`."""
    grid = machine_grid()
    rows = []
    notes = []
    for name in WORKLOAD_NAMES:
        annotated = get_annotated(name, trace_len)

        # Anchor measurements on the 64D baseline.
        anchor = MachineConfig.named("64D")
        real = run_cyclesim(
            annotated,
            CycleSimConfig.from_machine(anchor, miss_penalty=miss_penalty),
        )
        perfect = run_cyclesim(
            annotated,
            CycleSimConfig.from_machine(
                anchor, miss_penalty=miss_penalty, perfect_l2=True
            ),
        )
        result = sweep(annotated, grid)
        base = result.results["64D"]
        base_rate = base.accesses / base.instructions
        overlap = derive_overlap_cm(
            real.cpi, perfect.cpi, base_rate, miss_penalty, base.mlp
        )
        base_cpi = estimate_cpi(
            perfect.cpi, overlap, base_rate, miss_penalty, base.mlp
        )

        row = [DISPLAY_NAMES[name]]
        for label, _ in grid[1:]:
            r = result.results[label]
            rate = r.accesses / r.instructions
            cpi = estimate_cpi(
                perfect.cpi, overlap, rate, miss_penalty, r.mlp
            )
            row.append(base_cpi / cpi - 1)
        rows.append(row)
        rae_gain = row[1 + [label for label, _ in grid[1:]].index("RAE")]
        notes.append(
            f"{DISPLAY_NAMES[name]}: RAE = {rae_gain:+.0%} performance"
            " (paper: +60%/+44%/+11%)"
        )
    headers = ["Benchmark"] + [label for label, _ in grid[1:]]
    notes.append(
        "all improvements relative to the 64D machine at 1000-cycle"
        " off-chip latency, CPI estimated via Equation 2 as in the paper"
    )
    return Exhibit(
        name="Figure 11",
        title="Overall performance improvement vs 64D",
        tables=[(None, headers, rows)],
        notes=notes,
        float_format="+.1%",
    )
