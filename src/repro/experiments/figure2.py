"""Figure 2: clustering of off-chip misses.

For each workload: the cumulative probability of another off-chip
access within k dynamic instructions, observed vs. a uniform
(memoryless) inter-miss model with the same mean.  The paper's point:
the observed distributions are extremely clustered — especially for
SPECweb99 and SPECjbb2000 — which is what makes MLP exploitable with
windows that are tiny relative to the mean inter-miss distance.
"""

from repro.analysis.clustering import clustering_curves
from repro.experiments.common import (
    DISPLAY_NAMES,
    Exhibit,
    WORKLOAD_NAMES,
    get_annotated,
)

#: Distances (dynamic instructions) at which the curves are tabulated.
POINTS = (8, 16, 32, 64, 128, 256, 512, 1024, 4096)


def run(trace_len=None):
    """Reproduce Figure 2; returns an :class:`Exhibit`."""
    import numpy as np

    rows = []
    notes = []
    for name in WORKLOAD_NAMES:
        annotated = get_annotated(name, trace_len)
        curves = clustering_curves(annotated, workload=DISPLAY_NAMES[name])
        for point in POINTS:
            idx = min(
                int(np.searchsorted(curves.distances, point)),
                len(curves.distances) - 1,
            )
            rows.append(
                [
                    DISPLAY_NAMES[name],
                    point,
                    curves.observed[idx],
                    curves.uniform[idx],
                ]
            )
        notes.append(
            f"{DISPLAY_NAMES[name]}: mean inter-miss distance"
            f" {curves.mean_distance:.0f} insts, observed-vs-uniform"
            f" divergence {curves.divergence():.2f}"
            " (paper: strong clustering, largest for SPECweb99/SPECjbb2000)"
        )

    return Exhibit(
        name="Figure 2",
        title="Clustering of Misses (cumulative inter-miss distribution)",
        tables=[
            (
                None,
                ["Benchmark", "Within insts", "P(observed)", "P(uniform)"],
                rows,
            )
        ],
        notes=notes,
    )
