"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``generate``  — synthesise a workload trace and save it as ``.npz``;
* ``stats``     — print trace statistics (mix, misses, clustering);
* ``calibrate`` — compare a workload's measured characteristics against
  the paper's published numbers;
* ``simulate``  — run MLPsim (or an in-order machine) over a workload or
  saved trace and print MLP, inhibitors and store MLP;
* ``cyclesim``  — run the cycle-accurate simulator and print CPI/MLP;
* ``sweep``     — run a machine-config grid under crash-safe
  supervision: journaled checkpoint/resume, per-config timeouts,
  retry with backoff, dead-letter quarantine (see
  ``docs/ROBUSTNESS.md``);
* ``exhibit``   — regenerate one (or all) of the paper's tables/figures;
* ``ablation``  — run one of the ablation studies;
* ``lint``      — statically check the repository invariants
  (reprolint; see ``docs/STATIC_ANALYSIS.md``).

Examples::

    python -m repro simulate database --machine 64C --machine RAE
    python -m repro exhibit table3
    python -m repro generate specweb99 -n 200000 -o web.npz
    python -m repro simulate --trace web.npz --machine 128E
    python -m repro sweep database -n 60000 --jobs 4 \\
        --journal sweep.jsonl --config-timeout 120 --max-retries 2
    python -m repro sweep database -n 60000 --journal sweep.jsonl --resume
    python -m repro ablation runahead_distance
"""

import argparse
import sys

from repro.core.config import MachineConfig
from repro.robustness.errors import ConfigError, ReproError


def _parse_machine(spec):
    """Parse a machine spec like ``64C``, ``64D/rob256`` or ``RAE``.

    Comma-separated ``key=value`` options follow after a colon, e.g.
    ``64C:store_buffer=8,max_outstanding=16`` or ``RAE:max_runahead=512``.

    Raises
    ------
    ConfigError
        On any malformed spec — unparseable option values, unknown
        option names, bad ``/rob`` suffixes, unknown machine names.
        The CLI turns this into a one-line error with exit code 2.
    """
    original = spec
    options = {}
    if ":" in spec:
        spec, raw = spec.split(":", 1)
        for item in raw.split(","):
            key, _, value = item.partition("=")
            if not key or not value:
                raise ConfigError(
                    f"bad machine spec {original!r}: malformed option"
                    f" {item!r} (expected key=value)"
                )
            if value in ("true", "True"):
                parsed = True
            elif value in ("false", "False"):
                parsed = False
            else:
                try:
                    parsed = int(value)
                except ValueError:
                    try:
                        parsed = float(value)
                    except ValueError:
                        raise ConfigError(
                            f"bad machine spec {original!r}: option"
                            f" {key!r} has non-numeric value {value!r}"
                        ) from None
            options[key] = parsed
    if spec.upper() in ("RAE", "RUNAHEAD"):
        return MachineConfig.runahead_machine(**options)
    if spec.upper() in ("SOM", "STALL-ON-MISS", "SOU", "STALL-ON-USE"):
        raise ConfigError(
            "use --machine with an out-of-order spec; in-order machines"
            " are selected with --in-order"
        )
    if "/rob" in spec:
        base, rob = spec.split("/rob", 1)
        try:
            options["rob"] = int(rob)
        except ValueError:
            raise ConfigError(
                f"bad machine spec {original!r}: ROB suffix {rob!r} is"
                " not an integer"
            ) from None
        return MachineConfig.named(base, **options)
    return MachineConfig.named(spec, **options)


def _load_annotated(args):
    """Resolve the workload/trace arguments into an annotated trace."""
    from repro.trace.annotate import annotate
    from repro.trace.io import load_trace
    from repro.workloads import generate_trace

    if getattr(args, "trace", None):
        trace = load_trace(args.trace)
    else:
        trace = generate_trace(args.workload, args.length, seed=args.seed)
    return annotate(trace)


def _add_trace_arguments(parser, require_workload=True):
    parser.add_argument(
        "workload",
        nargs="?" if not require_workload else None,
        help="workload name (database / specjbb2000 / specweb99)",
    )
    parser.add_argument(
        "--trace", help="load a saved .npz trace instead of generating"
    )
    parser.add_argument(
        "-n", "--length", type=int, default=120_000,
        help="trace length in instructions (default 120000)",
    )
    parser.add_argument("--seed", type=int, default=1234)


def cmd_generate(args):
    """``repro generate``: synthesise and save a workload trace."""
    from repro.trace.io import save_trace
    from repro.workloads import generate_trace

    trace = generate_trace(args.workload, args.length, seed=args.seed)
    save_trace(trace, args.output)
    print(f"wrote {len(trace)} instructions to {args.output}")
    return 0


def cmd_stats(args):
    """``repro stats``: trace statistics and miss clustering."""
    from repro.analysis.clustering import clustering_curves
    from repro.trace.stats import compute_stats

    annotated = _load_annotated(args)
    stats = compute_stats(
        annotated.trace, dmiss_mask=annotated.dmiss, imiss_mask=annotated.imiss
    )
    print(stats.format())
    print()
    print(clustering_curves(annotated).format())
    return 0


def cmd_calibrate(args):
    """``repro calibrate``: measured vs published characteristics."""
    from repro.workloads.calibration import check_calibration

    annotated = _load_annotated(args)
    print(check_calibration(annotated.trace, annotated).format())
    return 0


def cmd_simulate(args):
    """``repro simulate``: MLPsim / in-order machines over a trace."""
    from repro.core.inorder import (
        simulate_stall_on_miss,
        simulate_stall_on_use,
    )
    from repro.core.mlpsim import simulate

    annotated = _load_annotated(args)
    results = []
    if args.in_order in ("stall-on-miss", "both"):
        results.append(simulate_stall_on_miss(annotated))
    if args.in_order in ("stall-on-use", "both"):
        results.append(simulate_stall_on_use(annotated))
    for spec in args.machine or (["64C"] if not args.in_order else []):
        results.append(simulate(annotated, _parse_machine(spec)))
    for result in results:
        print(result.summary())
        if args.inhibitors:
            breakdown = result.inhibitor_breakdown()
            parts = [
                f"{k.value}={v:.1%}" for k, v in breakdown.items() if v > 0.001
            ]
            print(f"    inhibitors: {', '.join(parts) or 'n/a'}")
        if args.store_mlp and result.store_accesses:
            print(
                f"    store MLP: {result.store_mlp:.3f}"
                f" ({result.store_accesses} off-chip stores)"
            )
    return 0


def cmd_cyclesim(args):
    """``repro cyclesim``: the cycle-accurate simulator."""
    from repro.cyclesim import CycleSimConfig, run_cyclesim

    annotated = _load_annotated(args)
    for spec in args.machine or ["64C"]:
        machine = _parse_machine(spec)
        config = CycleSimConfig.from_machine(
            machine, miss_penalty=args.latency, perfect_l2=args.perfect_l2
        )
        metrics = run_cyclesim(annotated, config)
        print(metrics.summary())
        if args.stack:
            print(f"    {metrics.format_cpi_stack()}")
    return 0


def cmd_sweep(args):
    """``repro sweep``: a config grid under crash-safe supervision.

    The grid is either the ``--machine`` specs or the cross product of
    ``--windows`` and ``--policies``.  With ``--journal`` every
    completion is checkpointed; ``--resume`` replays the journal and
    re-executes only unfinished configs.  Configurations that exhaust
    their retry budget are quarantined and reported at the end,
    fail-soft; the exit code is nonzero iff any config was quarantined.
    """
    from repro.analysis.parallel import resolve_jobs
    from repro.robustness.supervisor import SupervisorPolicy, supervised_sweep

    resolve_jobs(args.jobs)  # reject bad --jobs/REPRO_JOBS before any work
    if args.resume and not args.journal:
        raise ConfigError(
            "--resume needs --journal PATH to resume from",
            field="resume",
        )
    grid = _sweep_grid(args)
    annotated = _load_annotated(args)
    if args.engine != "scalar":
        if args.journal or args.resume:
            raise ConfigError(
                "--engine batched/auto is the unsupervised fast path;"
                " journalled/resumable sweeps use --engine scalar",
                field="engine",
            )
        from repro.analysis.sweep import sweep as run_sweep

        result = run_sweep(
            annotated, grid, jobs=args.jobs, engine=args.engine,
            progress=lambda label: print(f"  done: {label}"),
        )
        print(f"== sweep: {result.workload} ({len(grid)} configs)"
              f" [{args.engine} engine] ==")
        for label, config_result in result.results.items():
            print(f"  {label:<24} MLP={config_result.mlp:.3f}")
        return 0
    policy = SupervisorPolicy(
        max_retries=args.max_retries,
        config_timeout=args.config_timeout,
        backoff_base=args.backoff,
    )
    result = supervised_sweep(
        annotated,
        grid,
        seed=args.seed,
        jobs=args.jobs,
        journal_path=args.journal,
        resume=args.resume,
        policy=policy,
        progress=lambda label: print(f"  done: {label}"),
    )
    print(f"== sweep: {result.workload} ({len(grid)} configs) ==")
    for label, config_result in result.results.items():
        print(f"  {label:<24} MLP={config_result.mlp:.3f}")
    if result.resumed:
        print(f"resumed {result.resumed} config(s) from the journal;"
              f" executed {result.executed}")
    if result.worker_replacements:
        print(f"replaced {result.worker_replacements} worker(s)"
              + (" and degraded to the serial backend"
                 if result.degraded_to_serial else ""))
    if result.quarantined:
        print(f"quarantined {len(result.quarantined)} config(s):")
        for line in result.quarantine_report().splitlines():
            print(f"  {line}")
    return 0 if result.complete else 1


def _sweep_grid(args):
    """Build the ``repro sweep`` grid: explicit specs or a cross."""
    if args.machine:
        return [(spec, _parse_machine(spec)) for spec in args.machine]
    try:
        windows = [int(w) for w in args.windows.split(",") if w.strip()]
    except ValueError:
        raise ConfigError(
            f"--windows must be comma-separated integers,"
            f" got {args.windows!r}",
            field="windows",
        ) from None
    policies = [p.strip().upper() for p in args.policies.split(",")
                if p.strip()]
    if not windows or not policies:
        raise ConfigError(
            "--windows and --policies must each name at least one value",
            field="windows",
        )
    return [
        (f"{window}{policy}", MachineConfig.named(f"{window}{policy}"))
        for window in windows
        for policy in policies
    ]


def cmd_exhibit(args):
    """``repro exhibit``: regenerate paper tables/figures, fail-soft.

    Every requested exhibit runs even if an earlier one fails or times
    out; a pass/fail summary prints at the end, and the exit code is
    nonzero iff any exhibit failed.
    """
    import os

    from repro.analysis.parallel import resolve_jobs
    from repro.experiments.runner import format_summary, run_exhibits

    # Validate worker counts up front: a bad --jobs or REPRO_JOBS must
    # exit 2 with a one-line message, not fail every exhibit in turn.
    resolve_jobs(args.jobs)

    if args.length is not None:
        os.environ["REPRO_TRACE_LEN"] = str(args.length)

    def show(outcome):
        if outcome.ok:
            print(outcome.exhibit.format())
        else:
            print(f"== {outcome.name}: FAILED ({outcome.error}) ==")
        print()

    outcomes = run_exhibits(
        args.names, timeout=args.timeout, progress=show, jobs=args.jobs
    )
    print(format_summary(outcomes))
    return 0 if all(o.ok for o in outcomes) else 1


def cmd_ablation(args):
    """``repro ablation``: run the ablation studies."""
    import os

    from repro.experiments.ablations import ABLATIONS, run_ablation

    if args.length is not None:
        os.environ["REPRO_TRACE_LEN"] = str(args.length)
    names = args.names or list(ABLATIONS)
    for name in names:
        print(run_ablation(name).format())
        print()
    return 0


def cmd_inspect(args):
    """``repro inspect``: print the first epochs of a run, with context."""
    from repro.core.mlpsim import simulate

    annotated = _load_annotated(args)
    machine = _parse_machine(args.machine[0] if args.machine else "64C")
    start = annotated.measure_start
    result = simulate(
        annotated,
        machine,
        start=start,
        stop=min(len(annotated.trace), start + args.window),
        record_sets=True,
    )
    print(
        f"{result.workload} on {machine.label}: {result.epochs} epochs,"
        f" MLP={result.mlp:.3f} over the first {args.window} measured"
        " instructions"
    )
    for epoch in result.epoch_records[: args.epochs]:
        trigger = annotated.trace.instruction(epoch.trigger)
        print(
            f"\nepoch {epoch.index}: {epoch.accesses} accesses,"
            f" trigger={epoch.trigger_kind} @ i{epoch.trigger},"
            f" ended by {epoch.inhibitor.value}"
        )
        print(f"  trigger: {trigger}")
        members = epoch.members or []
        shown = members[: args.members]
        for index in shown:
            marks = []
            if annotated.dmiss[index]:
                marks.append("Dmiss")
            if annotated.imiss[index]:
                marks.append("Imiss")
            if annotated.mispred[index]:
                marks.append("Mispred")
            suffix = f"   <- {', '.join(marks)}" if marks else ""
            print(f"    i{index}: {annotated.trace.instruction(index)}{suffix}")
        if len(members) > len(shown):
            print(f"    ... and {len(members) - len(shown)} more")
    return 0


def cmd_lint(args):
    """``repro lint``: run the reprolint static-analysis passes.

    Exit codes: 0 when the tree is clean, 1 when any finding is
    reported, 2 on usage errors (unknown pass ids, bad root).
    """
    import json
    import sys

    from repro.lint import Severity, registered_passes, run_lint

    if args.list:
        for pass_id, cls in sorted(registered_passes().items()):
            severity = cls.severity.value
            print(f"{pass_id:<18} {severity:<8} {cls.description}")
        return 0
    if args.manifest_update:
        from repro.lint.update import ManifestUpdateError, update_manifest

        try:
            result = update_manifest(args.root)
        except ManifestUpdateError as exc:
            print(f"repro lint --manifest-update: {exc}", file=sys.stderr)
            return 2
        state = "regenerated" if result["changed"] else "already current"
        print(f"manifest {state}:")
        print(f"  oracle sha256          {result['oracle_sha256']}")
        print(f"  payload schema version {result['payload_schema_version']}")
        print(f"  payload fingerprint    {result['payload_schema_sha256']}")
        for name, sha in sorted(
            result["plan_contract_fingerprints"].items()
        ):
            print(f"  {name:<22} {sha}")
        return 0
    select = None
    if args.select:
        select = [
            item.strip()
            for chunk in args.select
            for item in chunk.split(",")
            if item.strip()
        ]
    stats = {} if args.stats else None
    findings = run_lint(args.root, select=select, stats=stats)
    if args.format == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    elif args.format == "sarif":
        from repro.lint.sarif import sarif_payload

        print(json.dumps(
            sarif_payload(findings, registered_passes()), indent=2
        ))
    elif args.format == "github":
        # GitHub Actions workflow-command annotations: each finding
        # becomes an inline ::error/::warning marker on the PR diff.
        for finding in findings:
            kind = "error" if finding.severity is Severity.ERROR else "warning"
            print(
                f"::{kind} file={finding.path},line={finding.line}"
                f"::[{finding.pass_id}] {finding.message}"
            )
    else:
        for finding in findings:
            print(finding.format())
        ran = ", ".join(select) if select else "all passes"
        print(
            f"reprolint: {len(findings)} finding(s)"
            f" ({ran}, root {args.root})"
        )
    if stats is not None:
        # One line per pass plus the parse ledger, on stderr so the
        # structured stdout formats stay machine-parseable.
        for entry in stats["passes"]:
            print(
                f"stats: {entry['id']:<18} {entry['seconds']*1000:9.1f} ms"
                f"  {entry['findings']} finding(s)",
                file=sys.stderr,
            )
        print(
            f"stats: files parsed once: {stats['files_parsed']}"
            f" (py + C extract/unit, shared across passes)",
            file=sys.stderr,
        )
    errors = [f for f in findings if f.severity is Severity.ERROR]
    return 1 if errors else 0


def cmd_report(args):
    """``repro report``: write the full machine-generated markdown report."""
    import os

    from repro.experiments.report import write_report

    if args.length is not None:
        os.environ["REPRO_TRACE_LEN"] = str(args.length)
    write_report(
        args.output,
        exhibit_names=args.names or None,
        include_ablations=args.ablations,
        progress=lambda name: print(f"  done: {name}"),
    )
    print(f"wrote {args.output}")
    return 0


def build_parser():
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MLP / epoch-model reproduction of Chou et al., ISCA 2004",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="synthesise a workload trace")
    p.add_argument("workload")
    p.add_argument("-n", "--length", type=int, default=120_000)
    p.add_argument("--seed", type=int, default=1234)
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("stats", help="trace statistics and miss clustering")
    _add_trace_arguments(p, require_workload=False)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("calibrate", help="compare against paper targets")
    _add_trace_arguments(p, require_workload=False)
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser("simulate", help="run MLPsim over a workload/trace")
    _add_trace_arguments(p, require_workload=False)
    p.add_argument(
        "-m", "--machine", action="append",
        help="machine spec, e.g. 64C, 64D/rob256, RAE,"
        " 64C:store_buffer=8 (repeatable)",
    )
    p.add_argument(
        "--in-order", choices=["stall-on-miss", "stall-on-use", "both"],
        help="also run an in-order machine",
    )
    p.add_argument("--inhibitors", action="store_true",
                   help="print the Figure 5 inhibitor breakdown")
    p.add_argument("--store-mlp", action="store_true",
                   help="print store MLP when stores left the chip")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("cyclesim", help="run the cycle-accurate simulator")
    _add_trace_arguments(p, require_workload=False)
    p.add_argument("-m", "--machine", action="append")
    p.add_argument("--latency", type=int, default=1000)
    p.add_argument("--perfect-l2", action="store_true")
    p.add_argument("--stack", action="store_true",
                   help="print the CPI stack (per-category cycle attribution)")
    p.set_defaults(func=cmd_cyclesim)

    p = sub.add_parser(
        "sweep",
        help="run a config grid under crash-safe supervision"
        " (journal/resume/retry/quarantine)",
    )
    _add_trace_arguments(p, require_workload=False)
    p.add_argument(
        "-m", "--machine", action="append",
        help="machine spec for one grid point (repeatable); default"
        " grid is --windows x --policies",
    )
    p.add_argument("--windows", default="16,32,64,128",
                   help="comma-separated issue-window sizes for the"
                   " default grid (default 16,32,64,128)")
    p.add_argument("--policies", default="A,B,C,D,E",
                   help="comma-separated Table 2 issue policies for the"
                   " default grid (default A,B,C,D,E)")
    p.add_argument("-j", "--jobs", type=int, default=None,
                   help="worker processes (0 = one per CPU; default"
                   " REPRO_JOBS or serial)")
    p.add_argument("--journal",
                   help="JSON-lines sweep journal path; enables"
                   " checkpointing and --resume")
    p.add_argument("--resume", action="store_true",
                   help="replay the journal and re-execute only"
                   " unfinished configs")
    p.add_argument("--max-retries", type=int, default=2,
                   help="re-executions per config before quarantine"
                   " (default 2)")
    p.add_argument("--config-timeout", type=float, default=None,
                   help="wall-clock budget per config attempt in"
                   " seconds (default unbounded)")
    p.add_argument("--backoff", type=float, default=0.5,
                   help="base seconds for exponential retry backoff"
                   " (default 0.5)")
    p.add_argument("--engine", choices=("scalar", "auto", "batched"),
                   default="scalar",
                   help="simulation backend: 'scalar' (default) runs"
                   " the supervised per-config interpreter;"
                   " 'auto'/'batched' run the config-batched columnar"
                   " engine — bit-identical results, ~10x faster on"
                   " full grids, but without journal/retry supervision")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("exhibit", help="regenerate paper tables/figures")
    p.add_argument("names", nargs="*",
                   help="exhibit names ('all' or empty: every exhibit)")
    p.add_argument("-n", "--length", type=int,
                   help="trace length (sets REPRO_TRACE_LEN)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-exhibit wall-clock budget in seconds;"
                   " an exhibit over budget is recorded as failed and"
                   " the batch continues")
    p.add_argument("-j", "--jobs", type=int, default=None,
                   help="worker processes for configuration sweeps"
                   " (sets REPRO_JOBS; 0 = one per CPU, default serial)")
    p.set_defaults(func=cmd_exhibit)

    p = sub.add_parser("inspect", help="print the first epochs of a run")
    _add_trace_arguments(p, require_workload=False)
    p.add_argument("-m", "--machine", action="append",
                   help="machine spec (default 64C; first one is used)")
    p.add_argument("--epochs", type=int, default=8,
                   help="how many epochs to print")
    p.add_argument("--members", type=int, default=12,
                   help="epoch-set members to print per epoch")
    p.add_argument("--window", type=int, default=4000,
                   help="measured instructions to simulate")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("report", help="write a full markdown report")
    p.add_argument("names", nargs="*", help="exhibit names (default: all)")
    p.add_argument("-o", "--output", default="REPORT.md")
    p.add_argument("--ablations", action="store_true",
                   help="include the ablation studies")
    p.add_argument("-n", "--length", type=int,
                   help="trace length (sets REPRO_TRACE_LEN)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("lint", help="statically check repository invariants")
    p.add_argument("--root", default=".",
                   help="project root (the directory containing src/repro)")
    p.add_argument("--format", choices=["text", "json", "github", "sarif"],
                   default="text",
                   help="output format (github emits workflow-command"
                   " annotations for CI; sarif emits a SARIF 2.1.0 log"
                   " for code-scanning upload; default text)")
    p.add_argument("--select", action="append", metavar="PASS[,PASS...]",
                   help="run only these passes (repeatable or"
                   " comma-separated; see --list)")
    p.add_argument("--list", action="store_true",
                   help="list the registered passes (id, default"
                   " severity, description) and exit")
    p.add_argument("--stats", action="store_true",
                   help="print per-pass wall time and the shared-parse"
                   " ledger to stderr after the findings")
    p.add_argument("--manifest-update", action="store_true",
                   help="regenerate the pinned oracle SHA and payload"
                   " schema fingerprint in repro.lint.manifest (atomic;"
                   " refuses on an unrelated-dirty git tree)")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("ablation", help="run ablation studies")
    p.add_argument("names", nargs="*", help="ablation names (default: all)")
    p.add_argument("-n", "--length", type=int,
                   help="trace length (sets REPRO_TRACE_LEN)")
    p.set_defaults(func=cmd_ablation)

    return parser


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if (
        args.command in ("stats", "calibrate", "simulate", "cyclesim",
                         "inspect", "sweep")
        and not args.workload
        and not args.trace
    ):
        parser.error("provide a workload name or --trace FILE")
    try:
        return args.func(args)
    except (ReproError, ValueError) as error:
        parser.exit(2, f"error: {error}\n")


if __name__ == "__main__":
    sys.exit(main())
