"""repro: a reproduction of "Microarchitecture Optimizations for
Exploiting Memory-Level Parallelism" (Chou, Fahs & Abraham, ISCA 2004).

The package implements the paper's epoch model of MLP and its MLPsim
simulator, a cycle-accurate out-of-order pipeline for validation,
the full memory/branch/value-prediction substrate, synthetic commercial
workloads standing in for the paper's proprietary traces, and harnesses
that regenerate every table and figure of the evaluation section.

Quickstart::

    from repro import MachineConfig, MLPSim, annotate, generate_trace

    trace = generate_trace("database", 100_000)
    annotated = annotate(trace)
    result = MLPSim(MachineConfig.named("64C")).run(annotated)
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.core.config import (
    BranchPolicy,
    IssueConfig,
    LoadPolicy,
    MachineConfig,
    SerializePolicy,
)
from repro.core.inorder import (
    InOrderPolicy,
    simulate_inorder,
    simulate_stall_on_miss,
    simulate_stall_on_use,
)
from repro.core.mlpsim import MLPSim, simulate
from repro.core.results import MLPResult
from repro.core.termination import Inhibitor
from repro.cyclesim import CycleSimConfig, CycleSimulator, run_cyclesim
from repro.perf.cpi_model import (
    cpi_breakdown,
    derive_overlap_cm,
    estimate_cpi,
    speedup,
)
from repro.robustness.errors import (
    ConfigError,
    ReproError,
    SimulationError,
    TraceFormatError,
)
from repro.robustness.validate import validate_annotated, validate_trace
from repro.trace.annotate import AnnotationConfig, annotate, manual_annotation
from repro.trace.builder import TraceBuilder
from repro.trace.io import load_annotated, load_trace, save_annotated, save_trace
from repro.trace.trace import Trace
from repro.workloads import generate_trace, get_workload

__version__ = "1.0.0"

__all__ = [
    "BranchPolicy",
    "IssueConfig",
    "LoadPolicy",
    "MachineConfig",
    "SerializePolicy",
    "InOrderPolicy",
    "simulate_inorder",
    "simulate_stall_on_miss",
    "simulate_stall_on_use",
    "MLPSim",
    "simulate",
    "MLPResult",
    "Inhibitor",
    "CycleSimConfig",
    "CycleSimulator",
    "run_cyclesim",
    "cpi_breakdown",
    "derive_overlap_cm",
    "estimate_cpi",
    "speedup",
    "ReproError",
    "TraceFormatError",
    "ConfigError",
    "SimulationError",
    "validate_trace",
    "validate_annotated",
    "AnnotationConfig",
    "annotate",
    "manual_annotation",
    "TraceBuilder",
    "load_annotated",
    "load_trace",
    "save_annotated",
    "save_trace",
    "Trace",
    "generate_trace",
    "get_workload",
    "__version__",
]
