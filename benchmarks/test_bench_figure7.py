"""Benchmark: regenerate the paper's Figure 7 (impact of L2 cache size).

Traces re-annotated under each L2 capacity, then run through
the default machine.
"""


def test_bench_figure7(run_exhibit_benchmark):
    exhibit = run_exhibit_benchmark("figure7")
    assert exhibit.tables
