"""Ablation benchmark: seed robustness of the headline MLP numbers.

Our traces are short synthetic samples of steady-state workloads; this
sweep regenerates each workload under several seeds and reports the
spread of the default-machine and runahead MLP, quantifying the
sampling noise behind every number in EXPERIMENTS.md.
"""


def test_ablation_seed_stability(benchmark, results_dir):
    from repro.analysis.variance import mlp_seed_sweep
    from repro.core.config import MachineConfig
    from repro.experiments.common import (
        DISPLAY_NAMES,
        Exhibit,
        WORKLOAD_NAMES,
        default_trace_len,
    )

    def run():
        seeds = (1234, 2024, 7)
        rows = []
        notes = []
        for name in WORKLOAD_NAMES:
            for label, machine in (
                ("64C", MachineConfig.named("64C")),
                ("RAE", MachineConfig.runahead_machine()),
            ):
                sweep = mlp_seed_sweep(
                    name, machine, seeds=seeds,
                    trace_len=default_trace_len(),
                )
                rows.append(
                    [
                        DISPLAY_NAMES[name],
                        label,
                        sweep.mean,
                        sweep.minimum,
                        sweep.maximum,
                        sweep.relative_spread,
                    ]
                )
            notes.append(
                f"{DISPLAY_NAMES[name]}: 64C MLP spread"
                f" {rows[-2][5]:.1%} across seeds"
            )
        return Exhibit(
            name="Ablation: seed stability",
            title="MLP sampling noise across workload-generator seeds",
            tables=[
                (
                    None,
                    ["Benchmark", "Machine", "mean", "min", "max", "spread"],
                    rows,
                )
            ],
            notes=notes,
        )

    exhibit = benchmark.pedantic(run, rounds=1, iterations=1)
    text = exhibit.format()
    (results_dir / "ablation_seed_stability.txt").write_text(text + "\n")
    print()
    print(text)
    assert exhibit.tables
