"""Perf-regression harness for the MLPsim engine and the sweep backend.

Times (a) single `simulate` runs against the frozen reference
interpreter (`repro.core.mlpsim_reference`) and (b) an 8-config sweep
serial vs. on a 4-worker pool, then appends one record per invocation
to ``benchmarks/results/BENCH_perf.json`` via the atomic writer so a
performance trajectory accumulates across PRs.

Trace length follows ``REPRO_TRACE_LEN`` (default 400,000
instructions); the CI perf-smoke job runs this file with a small
length, so the assertions are deliberately conservative — the headline
speedup numbers live in the JSON, not in the asserts.
"""

import json
import os
import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_perf.json"

SWEEP_SPECS = ("16A", "64A", "64B", "64C", "64D", "64E", "256E", "128C")
SWEEP_JOBS = 4
PERF_SEED = 1234


def _fixed_workloads():
    """The three paper workloads at the benchmark's fixed seed."""
    from repro.experiments.common import WORKLOAD_NAMES, get_annotated

    return [(name, get_annotated(name, seed=PERF_SEED))
            for name in WORKLOAD_NAMES]


def _machines():
    from repro.core.config import MachineConfig

    return [(spec, MachineConfig.named(spec)) for spec in SWEEP_SPECS]


def _best_of(fn, *args, reps=3, **kwargs):
    """Minimum wall time of *reps* calls (first call warms the memos)."""
    best = None
    for _ in range(reps):
        started = time.perf_counter()
        fn(*args, **kwargs)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def _append_record(kind, record):
    """Append one measurement to BENCH_perf.json atomically.

    The file holds ``{"runs": [...]}``; each entry is one harness
    invocation, so successive PRs accumulate a perf trajectory.  A
    corrupt or missing file starts a fresh history rather than failing
    the benchmark.
    """
    from repro.robustness.atomic import atomic_write_text

    history = {"runs": []}
    try:
        with open(BENCH_PATH) as handle:
            loaded = json.load(handle)
        if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
            history = loaded
    except (OSError, ValueError):
        pass
    record = dict(record, kind=kind)
    history["runs"].append(record)
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(BENCH_PATH, json.dumps(history, indent=2) + "\n")


def test_engine_single_run_speed(results_dir):
    """Time optimized vs. reference engine on the default machine."""
    from repro.cli import _parse_machine
    from repro.core.mlpsim import simulate
    from repro.core.mlpsim_reference import simulate_reference

    machine = _parse_machine("64C")
    per_workload = {}
    total_new = 0.0
    total_ref = 0.0
    total_insts = 0
    for name, annotated in _fixed_workloads():
        result = simulate(annotated, machine)  # warm caches + sanity
        t_new = _best_of(simulate, annotated, machine)
        t_ref = _best_of(simulate_reference, annotated, machine)
        per_workload[name] = {
            "instructions": result.instructions,
            "seconds": round(t_new, 6),
            "reference_seconds": round(t_ref, 6),
            "speedup": round(t_ref / t_new, 3),
            "insts_per_sec": round(result.instructions / t_new),
        }
        total_new += t_new
        total_ref += t_ref
        total_insts += result.instructions
    speedup = total_ref / total_new
    _append_record("engine", {
        "trace_len": len(_fixed_workloads()[0][1].trace),
        "machine": "64C",
        "seed": PERF_SEED,
        "cpu_count": os.cpu_count() or 1,
        "workloads": per_workload,
        "total_seconds": round(total_new, 6),
        "reference_total_seconds": round(total_ref, 6),
        "speedup": round(speedup, 3),
        "insts_per_sec": round(total_insts / total_new),
    })
    print(f"\nengine speedup vs reference: {speedup:.2f}x "
          f"({total_insts / total_new:,.0f} insts/sec)")
    # Conservative floor: the optimized engine must never lose to the
    # reference interpreter.  The >=3x target at the default 400k trace
    # length is recorded in the JSON trajectory.
    assert speedup > 1.0


def test_engine_results_match_reference():
    """The timed configurations must stay bit-identical to the oracle."""
    import dataclasses

    from repro.cli import _parse_machine
    from repro.core.mlpsim import simulate
    from repro.core.mlpsim_reference import simulate_reference

    machine = _parse_machine("64C")
    for name, annotated in _fixed_workloads():
        fast = simulate(annotated, machine)
        oracle = simulate_reference(annotated, machine)
        fast_dict = dataclasses.asdict(fast)
        fast_dict["inhibitors"] = fast.inhibitors.as_dict()
        oracle_dict = dataclasses.asdict(oracle)
        oracle_dict["inhibitors"] = oracle.inhibitors.as_dict()
        assert fast_dict == oracle_dict, name


def test_sweep_scaling(results_dir):
    """Time the 8-config sweep serial vs. a 4-worker pool."""
    from repro.analysis.sweep import sweep

    name, annotated = _fixed_workloads()[0]
    machines = _machines()
    sweep(annotated, machines, jobs=1)  # warm every per-config memo
    t_serial = _best_of(sweep, annotated, machines, jobs=1, reps=2)
    t_parallel = _best_of(sweep, annotated, machines, jobs=SWEEP_JOBS,
                          reps=2)
    scaling = t_serial / t_parallel
    cpus = os.cpu_count() or 1
    _append_record("sweep", {
        "trace_len": len(annotated.trace),
        "workload": name,
        "configs": list(SWEEP_SPECS),
        "jobs": SWEEP_JOBS,
        "cpu_count": cpus,
        "serial_seconds": round(t_serial, 6),
        "parallel_seconds": round(t_parallel, 6),
        "scaling": round(scaling, 3),
    })
    print(f"\nsweep scaling at jobs={SWEEP_JOBS} on {cpus} cpus: "
          f"{scaling:.2f}x (serial {t_serial:.2f}s,"
          f" parallel {t_parallel:.2f}s)")
    # Scaling can only track min(jobs, cpus): on a single-core box the
    # pool adds pure overhead, and tiny smoke traces are dominated by
    # pool startup.  Assert near-linear behaviour only where the
    # hardware and trace length allow it; elsewhere guard against the
    # backend becoming pathologically slower than serial.
    if len(annotated.trace) >= 400_000 and cpus >= SWEEP_JOBS:
        floor = 0.5 * SWEEP_JOBS
    elif cpus == 1:
        floor = 0.4
    else:
        floor = 0.1
    assert scaling > floor


@pytest.fixture(scope="module", autouse=True)
def _report_bench_path():
    yield
    if BENCH_PATH.exists():
        print(f"\nperf trajectory: {BENCH_PATH}")
