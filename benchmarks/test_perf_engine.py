"""Perf-regression harness for the MLPsim engine and the sweep backend.

Times (a) single `simulate` runs against the frozen reference
interpreter (`repro.core.mlpsim_reference`) and (b) an 8-config sweep
serial vs. on a 4-worker pool, then appends one record per invocation
to ``benchmarks/results/BENCH_perf.json`` via the atomic writer so a
performance trajectory accumulates across PRs.

Trace length follows ``REPRO_TRACE_LEN`` (default 400,000
instructions); the CI perf-smoke job runs this file with a small
length, so the assertions are deliberately conservative — the headline
speedup numbers live in the JSON, not in the asserts.
"""

import json
import os
import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_perf.json"

SWEEP_SPECS = ("16A", "64A", "64B", "64C", "64D", "64E", "256E", "128C")
SWEEP_JOBS = 4
PERF_SEED = 1234

#: The paper's full grid axis: every window size x issue policies A-E.
#: 30 configs — the batched engine's headline measurement.
GRID_SPECS = tuple(
    f"{window}{policy}"
    for window in (16, 32, 64, 128, 256, 512)
    for policy in "ABCDE"
)

#: Worker counts of the scaling-vs-jobs curve (kind "sweep_scaling").
SCALING_JOBS = (1, 2, 4)


def _fixed_workloads():
    """The three paper workloads at the benchmark's fixed seed."""
    from repro.experiments.common import WORKLOAD_NAMES, get_annotated

    return [(name, get_annotated(name, seed=PERF_SEED))
            for name in WORKLOAD_NAMES]


def _machines():
    from repro.core.config import MachineConfig

    return [(spec, MachineConfig.named(spec)) for spec in SWEEP_SPECS]


def _best_of(fn, *args, reps=3, **kwargs):
    """Minimum wall time of *reps* calls (first call warms the memos)."""
    best = None
    for _ in range(reps):
        started = time.perf_counter()
        fn(*args, **kwargs)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def _append_record(kind, record):
    """Append one measurement to BENCH_perf.json atomically.

    The file holds ``{"runs": [...]}``; each entry is one harness
    invocation, so successive PRs accumulate a perf trajectory.  A
    corrupt or missing file starts a fresh history rather than failing
    the benchmark.
    """
    from repro.robustness.atomic import atomic_write_text

    history = {"runs": []}
    try:
        with open(BENCH_PATH) as handle:
            loaded = json.load(handle)
        if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
            history = loaded
    except (OSError, ValueError):
        pass
    record = dict(record, kind=kind)
    history["runs"].append(record)
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(BENCH_PATH, json.dumps(history, indent=2) + "\n")


def test_engine_single_run_speed(results_dir):
    """Time optimized vs. reference engine on the default machine."""
    from repro.cli import _parse_machine
    from repro.core.mlpsim import simulate
    from repro.core.mlpsim_reference import simulate_reference

    machine = _parse_machine("64C")
    per_workload = {}
    total_new = 0.0
    total_ref = 0.0
    total_insts = 0
    for name, annotated in _fixed_workloads():
        result = simulate(annotated, machine)  # warm caches + sanity
        t_new = _best_of(simulate, annotated, machine)
        t_ref = _best_of(simulate_reference, annotated, machine)
        per_workload[name] = {
            "instructions": result.instructions,
            "seconds": round(t_new, 6),
            "reference_seconds": round(t_ref, 6),
            "speedup": round(t_ref / t_new, 3),
            "insts_per_sec": round(result.instructions / t_new),
        }
        total_new += t_new
        total_ref += t_ref
        total_insts += result.instructions
    speedup = total_ref / total_new
    _append_record("engine", {
        "trace_len": len(_fixed_workloads()[0][1].trace),
        "machine": "64C",
        "seed": PERF_SEED,
        "cpu_count": os.cpu_count() or 1,
        "workloads": per_workload,
        "total_seconds": round(total_new, 6),
        "reference_total_seconds": round(total_ref, 6),
        "speedup": round(speedup, 3),
        "insts_per_sec": round(total_insts / total_new),
    })
    print(f"\nengine speedup vs reference: {speedup:.2f}x "
          f"({total_insts / total_new:,.0f} insts/sec)")
    # Conservative floor: the optimized engine must never lose to the
    # reference interpreter.  The >=3x target at the default 400k trace
    # length is recorded in the JSON trajectory.
    assert speedup > 1.0


def test_engine_results_match_reference():
    """The timed configurations must stay bit-identical to the oracle."""
    import dataclasses

    from repro.cli import _parse_machine
    from repro.core.mlpsim import simulate
    from repro.core.mlpsim_reference import simulate_reference

    machine = _parse_machine("64C")
    for name, annotated in _fixed_workloads():
        fast = simulate(annotated, machine)
        oracle = simulate_reference(annotated, machine)
        fast_dict = dataclasses.asdict(fast)
        fast_dict["inhibitors"] = fast.inhibitors.as_dict()
        oracle_dict = dataclasses.asdict(oracle)
        oracle_dict["inhibitors"] = oracle.inhibitors.as_dict()
        assert fast_dict == oracle_dict, name


def test_sweep_scaling(results_dir):
    """Time the 8-config sweep serial vs. a 4-worker pool."""
    from repro.analysis.sweep import sweep

    name, annotated = _fixed_workloads()[0]
    machines = _machines()
    sweep(annotated, machines, jobs=1)  # warm every per-config memo
    t_serial = _best_of(sweep, annotated, machines, jobs=1, reps=2)
    t_parallel = _best_of(sweep, annotated, machines, jobs=SWEEP_JOBS,
                          reps=2)
    scaling = t_serial / t_parallel
    cpus = os.cpu_count() or 1
    _append_record("sweep", {
        "trace_len": len(annotated.trace),
        "workload": name,
        "configs": list(SWEEP_SPECS),
        "jobs": SWEEP_JOBS,
        "cpu_count": cpus,
        "serial_seconds": round(t_serial, 6),
        "parallel_seconds": round(t_parallel, 6),
        "scaling": round(scaling, 3),
    })
    print(f"\nsweep scaling at jobs={SWEEP_JOBS} on {cpus} cpus: "
          f"{scaling:.2f}x (serial {t_serial:.2f}s,"
          f" parallel {t_parallel:.2f}s)")
    # Scaling can only track min(jobs, cpus): on a single-core box the
    # pool adds pure overhead, and tiny smoke traces are dominated by
    # pool startup.  Assert near-linear behaviour only where the
    # hardware and trace length allow it; elsewhere guard against the
    # backend becoming pathologically slower than serial.
    if len(annotated.trace) >= 400_000 and cpus >= SWEEP_JOBS:
        floor = 0.5 * SWEEP_JOBS
    elif cpus == 1:
        floor = 0.4
    else:
        floor = 0.1
    assert scaling > floor


def test_batched_grid_speedup(results_dir):
    """The config-batched engine vs. N scalar replays on the full grid.

    This is the tentpole measurement: 30 window x policy configs over
    one columnar trace, one batch per event-mask group (a single
    compiled pass when a C toolchain is present).  Results must be
    bit-identical to the scalar engine — which the equivalence suite
    already pins to the frozen reference — and the batch must never be
    slower than the scalar loop, even on CI smoke traces.
    """
    import dataclasses

    from repro.core.batched import simulate_batch
    from repro.core.ckernel import kernel_available
    from repro.core.config import MachineConfig
    from repro.core.mlpsim import simulate

    grid = [(spec, MachineConfig.named(spec)) for spec in GRID_SPECS]
    per_workload = {}
    total_scalar = 0.0
    total_batched = 0.0
    for name, annotated in _fixed_workloads():
        batch = simulate_batch(annotated, grid, workload=name)  # warm
        for label, machine in grid:
            scalar_result = simulate(annotated, machine, workload=name)
            want = dataclasses.asdict(scalar_result)
            want["inhibitors"] = scalar_result.inhibitors.as_dict()
            got = dataclasses.asdict(batch[label])
            got["inhibitors"] = batch[label].inhibitors.as_dict()
            assert got == want, (name, label)

        def scalar_grid(annotated=annotated, name=name):
            for _, machine in grid:
                simulate(annotated, machine, workload=name)

        t_scalar = _best_of(scalar_grid, reps=2)
        t_batched = _best_of(simulate_batch, annotated, grid,
                             workload=name, reps=3)
        per_workload[name] = {
            "seconds": round(t_batched, 6),
            "scalar_seconds": round(t_scalar, 6),
            "speedup": round(t_scalar / t_batched, 3),
            "per_config_ms": round(1000 * t_batched / len(grid), 3),
        }
        total_scalar += t_scalar
        total_batched += t_batched
    speedup = total_scalar / total_batched
    _append_record("batched_grid", {
        "trace_len": len(_fixed_workloads()[0][1].trace),
        "configs": len(grid),
        "seed": PERF_SEED,
        "cpu_count": os.cpu_count() or 1,
        "compiled_kernel": kernel_available(),
        "workloads": per_workload,
        "scalar_total_seconds": round(total_scalar, 6),
        "batched_total_seconds": round(total_batched, 6),
        "speedup_vs_scalar": round(speedup, 3),
        "per_config_seconds": round(total_batched / (3 * len(grid)), 6),
    })
    print(f"\nbatched grid ({len(grid)} configs): {speedup:.2f}x vs"
          f" scalar ({1000 * total_batched / (3 * len(grid)):.2f}"
          f" ms/config)")
    # The batched backend must never lose to the scalar loop — this is
    # the CI smoke gate; the >=10x full-trace target lives in the JSON
    # trajectory (compare per_config_seconds across runs).  The gate
    # binds to the compiled-kernel tier: the pure-NumPy tier exists for
    # correctness on compiler-less hosts, where it trades speed for
    # having no build step at all, and is pinned by the equivalence
    # suite rather than a perf floor.
    if kernel_available():
        assert speedup > 1.0


def test_sweep_scaling_curve(results_dir):
    """Scaling-vs-jobs curve of the batched sweep (kind "sweep_scaling").

    With the auto serial cutover, ``jobs=N`` on a small grid or a
    single-core box routes to the serial backend, so no point of the
    curve may fall meaningfully below 1.0x — per-core scaling stays
    >=0.8 everywhere, which is the acceptance floor recorded here.
    """
    from repro.analysis.sweep import sweep

    name, annotated = _fixed_workloads()[0]
    machines = _machines()
    sweep(annotated, machines)  # warm plans, kernel, memos
    cpus = os.cpu_count() or 1
    baseline = _best_of(sweep, annotated, machines, jobs=1, reps=2)
    curve = []
    for jobs in SCALING_JOBS:
        seconds = _best_of(sweep, annotated, machines, jobs=jobs, reps=2)
        scaling = baseline / seconds
        curve.append({
            "jobs": jobs,
            "seconds": round(seconds, 6),
            "scaling": round(scaling, 3),
            "per_core": round(scaling / min(jobs, cpus), 3),
        })
    _append_record("sweep_scaling", {
        "trace_len": len(annotated.trace),
        "workload": name,
        "configs": len(machines),
        "cpu_count": cpus,
        "engine": "auto",
        "baseline_seconds": round(baseline, 6),
        "curve": curve,
    })
    print("\nsweep scaling curve: " + ", ".join(
        f"jobs={p['jobs']}: {p['scaling']:.2f}x" for p in curve
    ))
    for point in curve:
        # Acceptance floor: >=0.8 per core.  The serial cutover makes
        # this hold even on one CPU, where a pool would otherwise lose
        # to serial outright (the pre-cutover records show 0.86x).
        assert point["per_core"] >= 0.8, point


@pytest.fixture(scope="module", autouse=True)
def _report_bench_path():
    yield
    if BENCH_PATH.exists():
        print(f"\nperf trajectory: {BENCH_PATH}")
