"""Perf-regression harness for the simulation engines and sweep backend.

Times (a) single `simulate` runs against the frozen reference
interpreter (`repro.core.mlpsim_reference`), (b) an 8-config sweep
serial vs. on a 4-worker pool, and (c) the cycle-accurate simulator —
single runs and the Table 3 grid through the supervised sweep backend
— against its own frozen reference
(`repro.cyclesim.simulator_reference`), then appends one record per
invocation to ``benchmarks/results/BENCH_perf.json`` via the atomic
writer so a performance trajectory accumulates across PRs.

Trace length follows ``REPRO_TRACE_LEN`` (default 400,000
instructions); the CI perf-smoke job runs this file with a small
length, so the assertions are deliberately conservative — the headline
speedup numbers live in the JSON, not in the asserts.
"""

import json
import os
import pathlib
import subprocess
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_perf.json"

#: Version of the record layout ``_append_record`` writes.  Bumped to 2
#: when ``git_rev``/``bench_schema`` stamping landed; records from
#: schema-1 harnesses lack both fields and readers must backfill
#: (see ``load_bench_records`` in ``benchmarks/conftest.py``).
BENCH_SCHEMA = 2

SWEEP_SPECS = ("16A", "64A", "64B", "64C", "64D", "64E", "256E", "128C")
SWEEP_JOBS = 4
PERF_SEED = 1234

#: The paper's full grid axis: every window size x issue policies A-E.
#: 30 configs — the batched engine's headline measurement.
GRID_SPECS = tuple(
    f"{window}{policy}"
    for window in (16, 32, 64, 128, 256, 512)
    for policy in "ABCDE"
)

#: Worker counts of the scaling-vs-jobs curve (kind "sweep_scaling").
SCALING_JOBS = (1, 2, 4)


def _fixed_workloads():
    """The three paper workloads at the benchmark's fixed seed."""
    from repro.experiments.common import WORKLOAD_NAMES, get_annotated

    return [(name, get_annotated(name, seed=PERF_SEED))
            for name in WORKLOAD_NAMES]


def _machines():
    from repro.core.config import MachineConfig

    return [(spec, MachineConfig.named(spec)) for spec in SWEEP_SPECS]


def _best_of(fn, *args, reps=3, **kwargs):
    """Minimum wall time of *reps* calls (first call warms the memos)."""
    best = None
    for _ in range(reps):
        started = time.perf_counter()
        fn(*args, **kwargs)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def _git_rev():
    """The commit this record measures: env override, then git, else None.

    ``GIT_COMMIT`` (set by CI) wins so containers measuring a detached
    export still attribute records correctly; a plain checkout asks
    ``git rev-parse``.  Fail-soft: provenance is metadata, and a
    benchmark must never fail because the tree is not a git work tree.
    No wall-clock timestamps — the rev *is* the point on the
    trajectory, and it stays stable across re-runs of the same tree.
    """
    rev = os.environ.get("GIT_COMMIT", "").strip()
    if rev:
        return rev
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    return proc.stdout.strip() or None


def _append_record(kind, record):
    """Append one measurement to BENCH_perf.json atomically.

    The file holds ``{"runs": [...]}``; each entry is one harness
    invocation — stamped with the commit it measured and the record
    schema version — so successive PRs accumulate a perf trajectory.
    A corrupt or missing file starts a fresh history rather than
    failing the benchmark.
    """
    from repro.robustness.atomic import atomic_write_text

    history = {"runs": []}
    try:
        with open(BENCH_PATH) as handle:
            loaded = json.load(handle)
        if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
            history = loaded
    except (OSError, ValueError):
        pass
    record = dict(
        record, kind=kind, bench_schema=BENCH_SCHEMA, git_rev=_git_rev(),
    )
    history["runs"].append(record)
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(BENCH_PATH, json.dumps(history, indent=2) + "\n")


def test_engine_single_run_speed(results_dir):
    """Time optimized vs. reference engine on the default machine."""
    from repro.cli import _parse_machine
    from repro.core.mlpsim import simulate
    from repro.core.mlpsim_reference import simulate_reference

    machine = _parse_machine("64C")
    per_workload = {}
    total_new = 0.0
    total_ref = 0.0
    total_insts = 0
    for name, annotated in _fixed_workloads():
        result = simulate(annotated, machine)  # warm caches + sanity
        t_new = _best_of(simulate, annotated, machine)
        t_ref = _best_of(simulate_reference, annotated, machine)
        per_workload[name] = {
            "instructions": result.instructions,
            "seconds": round(t_new, 6),
            "reference_seconds": round(t_ref, 6),
            "speedup": round(t_ref / t_new, 3),
            "insts_per_sec": round(result.instructions / t_new),
        }
        total_new += t_new
        total_ref += t_ref
        total_insts += result.instructions
    speedup = total_ref / total_new
    _append_record("engine", {
        "trace_len": len(_fixed_workloads()[0][1].trace),
        "machine": "64C",
        "seed": PERF_SEED,
        "cpu_count": os.cpu_count() or 1,
        "workloads": per_workload,
        "total_seconds": round(total_new, 6),
        "reference_total_seconds": round(total_ref, 6),
        "speedup": round(speedup, 3),
        "insts_per_sec": round(total_insts / total_new),
    })
    print(f"\nengine speedup vs reference: {speedup:.2f}x "
          f"({total_insts / total_new:,.0f} insts/sec)")
    # Conservative floor: the optimized engine must never lose to the
    # reference interpreter.  The >=3x target at the default 400k trace
    # length is recorded in the JSON trajectory.
    assert speedup > 1.0


def test_engine_results_match_reference():
    """The timed configurations must stay bit-identical to the oracle."""
    import dataclasses

    from repro.cli import _parse_machine
    from repro.core.mlpsim import simulate
    from repro.core.mlpsim_reference import simulate_reference

    machine = _parse_machine("64C")
    for name, annotated in _fixed_workloads():
        fast = simulate(annotated, machine)
        oracle = simulate_reference(annotated, machine)
        fast_dict = dataclasses.asdict(fast)
        fast_dict["inhibitors"] = fast.inhibitors.as_dict()
        oracle_dict = dataclasses.asdict(oracle)
        oracle_dict["inhibitors"] = oracle.inhibitors.as_dict()
        assert fast_dict == oracle_dict, name


def test_sweep_scaling(results_dir):
    """Time the 8-config sweep serial vs. a 4-worker pool."""
    from repro.analysis.sweep import sweep

    name, annotated = _fixed_workloads()[0]
    machines = _machines()
    sweep(annotated, machines, jobs=1)  # warm every per-config memo
    t_serial = _best_of(sweep, annotated, machines, jobs=1, reps=2)
    t_parallel = _best_of(sweep, annotated, machines, jobs=SWEEP_JOBS,
                          reps=2)
    scaling = t_serial / t_parallel
    cpus = os.cpu_count() or 1
    _append_record("sweep", {
        "trace_len": len(annotated.trace),
        "workload": name,
        "configs": list(SWEEP_SPECS),
        "jobs": SWEEP_JOBS,
        "cpu_count": cpus,
        "serial_seconds": round(t_serial, 6),
        "parallel_seconds": round(t_parallel, 6),
        "scaling": round(scaling, 3),
    })
    print(f"\nsweep scaling at jobs={SWEEP_JOBS} on {cpus} cpus: "
          f"{scaling:.2f}x (serial {t_serial:.2f}s,"
          f" parallel {t_parallel:.2f}s)")
    # Scaling can only track min(jobs, cpus): on a single-core box the
    # pool adds pure overhead, and tiny smoke traces are dominated by
    # pool startup.  Assert near-linear behaviour only where the
    # hardware and trace length allow it; elsewhere guard against the
    # backend becoming pathologically slower than serial.
    if len(annotated.trace) >= 400_000 and cpus >= SWEEP_JOBS:
        floor = 0.5 * SWEEP_JOBS
    elif cpus == 1:
        floor = 0.4
    else:
        floor = 0.1
    assert scaling > floor


def test_batched_grid_speedup(results_dir):
    """The config-batched engine vs. N scalar replays on the full grid.

    This is the tentpole measurement: 30 window x policy configs over
    one columnar trace, one batch per event-mask group (a single
    compiled pass when a C toolchain is present).  Results must be
    bit-identical to the scalar engine — which the equivalence suite
    already pins to the frozen reference — and the batch must never be
    slower than the scalar loop, even on CI smoke traces.
    """
    import dataclasses

    from repro.core.batched import simulate_batch
    from repro.core.ckernel import kernel_available
    from repro.core.config import MachineConfig
    from repro.core.mlpsim import simulate

    grid = [(spec, MachineConfig.named(spec)) for spec in GRID_SPECS]
    per_workload = {}
    total_scalar = 0.0
    total_batched = 0.0
    for name, annotated in _fixed_workloads():
        batch = simulate_batch(annotated, grid, workload=name)  # warm
        for label, machine in grid:
            scalar_result = simulate(annotated, machine, workload=name)
            want = dataclasses.asdict(scalar_result)
            want["inhibitors"] = scalar_result.inhibitors.as_dict()
            got = dataclasses.asdict(batch[label])
            got["inhibitors"] = batch[label].inhibitors.as_dict()
            assert got == want, (name, label)

        def scalar_grid(annotated=annotated, name=name):
            for _, machine in grid:
                simulate(annotated, machine, workload=name)

        t_scalar = _best_of(scalar_grid, reps=2)
        t_batched = _best_of(simulate_batch, annotated, grid,
                             workload=name, reps=3)
        per_workload[name] = {
            "seconds": round(t_batched, 6),
            "scalar_seconds": round(t_scalar, 6),
            "speedup": round(t_scalar / t_batched, 3),
            "per_config_ms": round(1000 * t_batched / len(grid), 3),
        }
        total_scalar += t_scalar
        total_batched += t_batched
    speedup = total_scalar / total_batched
    _append_record("batched_grid", {
        "trace_len": len(_fixed_workloads()[0][1].trace),
        "configs": len(grid),
        "seed": PERF_SEED,
        "cpu_count": os.cpu_count() or 1,
        "compiled_kernel": kernel_available(),
        "workloads": per_workload,
        "scalar_total_seconds": round(total_scalar, 6),
        "batched_total_seconds": round(total_batched, 6),
        "speedup_vs_scalar": round(speedup, 3),
        "per_config_seconds": round(total_batched / (3 * len(grid)), 6),
    })
    print(f"\nbatched grid ({len(grid)} configs): {speedup:.2f}x vs"
          f" scalar ({1000 * total_batched / (3 * len(grid)):.2f}"
          f" ms/config)")
    # The batched backend must never lose to the scalar loop — this is
    # the CI smoke gate; the >=10x full-trace target lives in the JSON
    # trajectory (compare per_config_seconds across runs).  The gate
    # binds to the compiled-kernel tier: the pure-NumPy tier exists for
    # correctness on compiler-less hosts, where it trades speed for
    # having no build step at all, and is pinned by the equivalence
    # suite rather than a perf floor.
    if kernel_available():
        assert speedup > 1.0


def test_sweep_scaling_curve(results_dir):
    """Scaling-vs-jobs curve of the batched sweep (kind "sweep_scaling").

    With the auto serial cutover, ``jobs=N`` on a small grid or a
    single-core box routes to the serial backend, so no point of the
    curve may fall meaningfully below 1.0x — per-core scaling stays
    >=0.8 everywhere, which is the acceptance floor recorded here.
    """
    from repro.analysis.sweep import sweep

    name, annotated = _fixed_workloads()[0]
    machines = _machines()
    sweep(annotated, machines)  # warm plans, kernel, memos
    cpus = os.cpu_count() or 1
    baseline = _best_of(sweep, annotated, machines, jobs=1, reps=2)
    curve = []
    for jobs in SCALING_JOBS:
        seconds = _best_of(sweep, annotated, machines, jobs=jobs, reps=2)
        scaling = baseline / seconds
        curve.append({
            "jobs": jobs,
            "seconds": round(seconds, 6),
            "scaling": round(scaling, 3),
            "per_core": round(scaling / min(jobs, cpus), 3),
        })
    _append_record("sweep_scaling", {
        "trace_len": len(annotated.trace),
        "workload": name,
        "configs": len(machines),
        "cpu_count": cpus,
        "engine": "auto",
        "baseline_seconds": round(baseline, 6),
        "curve": curve,
    })
    print("\nsweep scaling curve: " + ", ".join(
        f"jobs={p['jobs']}: {p['scaling']:.2f}x" for p in curve
    ))
    for point in curve:
        # Acceptance floor: >=0.8 per core.  The serial cutover makes
        # this hold even on one CPU, where a pool would otherwise lose
        # to serial outright (the pre-cutover records show 0.86x).
        assert point["per_core"] >= 0.8, point


#: The Table 3 validation grid the cyclesim grid benchmark fans out.
CYCLESIM_GRID = tuple(
    (f"{size}{letter}/p{latency}", size, letter, latency)
    for size in (32, 64, 128)
    for letter in "ABC"
    for latency in (200, 500, 1000)
)


def _cyclesim_pairs():
    from repro.core.config import MachineConfig
    from repro.cyclesim import CycleSimConfig

    return [
        (label, CycleSimConfig.from_machine(
            MachineConfig.named(f"{size}{letter}"), miss_penalty=latency,
        ))
        for label, size, letter, latency in CYCLESIM_GRID
    ]


def test_cyclesim_single_run_speed(results_dir):
    """Time the optimized cycle simulator vs. its frozen reference.

    One 64C/500-cycle run per workload; the record (kind "cyclesim")
    notes which tier ran — the compiled event-wheel kernel or the
    pure-Python fast path — since the two sit an order of magnitude
    apart.
    """
    import dataclasses

    from repro.core.config import MachineConfig
    from repro.cyclesim import CycleSimConfig, run_cyclesim
    from repro.cyclesim.ckernel import kernel_available
    from repro.cyclesim.simulator_reference import (
        run_cyclesim as run_reference,
    )

    config = CycleSimConfig.from_machine(
        MachineConfig.named("64C"), miss_penalty=500
    )
    per_workload = {}
    total_new = 0.0
    total_ref = 0.0
    total_insts = 0
    for name, annotated in _fixed_workloads():
        fast = run_cyclesim(annotated, config)  # warm plan + kernel
        oracle = run_reference(annotated, config)
        assert dataclasses.asdict(fast) == dataclasses.asdict(oracle), name
        t_new = _best_of(run_cyclesim, annotated, config)
        t_ref = _best_of(run_reference, annotated, config, reps=2)
        per_workload[name] = {
            "instructions": fast.instructions,
            "seconds": round(t_new, 6),
            "reference_seconds": round(t_ref, 6),
            "speedup": round(t_ref / t_new, 3),
            "insts_per_sec": round(fast.instructions / t_new),
        }
        total_new += t_new
        total_ref += t_ref
        total_insts += fast.instructions
    speedup = total_ref / total_new
    compiled = kernel_available()
    _append_record("cyclesim", {
        "trace_len": len(_fixed_workloads()[0][1].trace),
        "machine": "64C",
        "miss_penalty": 500,
        "seed": PERF_SEED,
        "cpu_count": os.cpu_count() or 1,
        "compiled_kernel": compiled,
        "workloads": per_workload,
        "total_seconds": round(total_new, 6),
        "reference_total_seconds": round(total_ref, 6),
        "speedup": round(speedup, 3),
        "insts_per_sec": round(total_insts / total_new),
    })
    print(f"\ncyclesim speedup vs reference: {speedup:.2f}x "
          f"({total_insts / total_new:,.0f} insts/sec,"
          f" kernel={compiled})")
    # CI perf-smoke gate: the compiled tier must hold >=3x even on
    # short smoke traces (the >=5x acceptance at the default 400k
    # length is recorded in the JSON trajectory).  The pure-Python
    # fast path exists for compiler-less hosts and wins by a narrower
    # margin, so it only has to never lose to the reference.
    if compiled:
        assert speedup >= 3.0
    else:
        assert speedup > 1.0


def test_cyclesim_grid_supervised_speedup(results_dir, tmp_path):
    """The Table 3 grid through the supervised sweep backend.

    27 configurations share one published cycle plan; the baseline is
    the frozen reference replayed per config.  Supervision (journal,
    retry bookkeeping, worker management) rides along, so this record
    (kind "cyclesim_grid") prices the whole production path, not a
    bare kernel loop.
    """
    from repro.analysis.sweep import sweep_cyclesim
    from repro.cyclesim.ckernel import kernel_available
    from repro.cyclesim.simulator_reference import (
        run_cyclesim as run_reference,
    )

    name, annotated = _fixed_workloads()[0]
    pairs = _cyclesim_pairs()
    journal = tmp_path / "cyclesim_grid.journal"

    def supervised_grid():
        return sweep_cyclesim(
            annotated, pairs, workload=name,
            supervise={"journal_path": journal, "resume": False},
        )

    swept = supervised_grid()  # warm plan + kernel, sanity-check grid
    assert swept.complete and len(swept.results) == len(pairs)
    sample_label, sample_config = pairs[0]
    oracle = run_reference(annotated, sample_config, workload=name)
    assert swept.results[sample_label].cycles == oracle.cycles

    t_grid = _best_of(supervised_grid, reps=2)

    def reference_grid():
        for _, config in pairs:
            run_reference(annotated, config, workload=name)

    t_ref = _best_of(reference_grid, reps=1)
    speedup = t_ref / t_grid
    compiled = kernel_available()
    _append_record("cyclesim_grid", {
        "trace_len": len(annotated.trace),
        "workload": name,
        "configs": len(pairs),
        "seed": PERF_SEED,
        "cpu_count": os.cpu_count() or 1,
        "compiled_kernel": compiled,
        "supervised": True,
        "grid_seconds": round(t_grid, 6),
        "reference_grid_seconds": round(t_ref, 6),
        "speedup_vs_reference": round(speedup, 3),
        "per_config_ms": round(1000 * t_grid / len(pairs), 3),
    })
    print(f"\ncyclesim grid ({len(pairs)} configs, supervised):"
          f" {speedup:.2f}x vs reference"
          f" ({1000 * t_grid / len(pairs):.2f} ms/config,"
          f" kernel={compiled})")
    # The >=10x grid-level acceptance at the default 400k length lives
    # in the JSON trajectory; the smoke gate only binds the compiled
    # tier, where batching must beat the per-config replay outright.
    if compiled:
        assert speedup >= 3.0
    else:
        assert speedup > 0.5  # supervision overhead on smoke traces


def test_bench_history_is_readable(bench_history):
    """Every accumulated record survives the backfill-tolerant reader.

    Schema-1 records predate ``git_rev``/``bench_schema`` stamping;
    the reader backfills both, so trajectory consumers can sort and
    group without per-record guards.
    """
    for record in bench_history:
        assert "kind" in record
        assert record["bench_schema"] >= 1
        assert "git_rev" in record  # may be None for schema-1 records
        if record["bench_schema"] >= BENCH_SCHEMA:
            assert record["git_rev"] is None or len(record["git_rev"]) >= 7


@pytest.fixture(scope="module", autouse=True)
def _report_bench_path():
    yield
    if BENCH_PATH.exists():
        print(f"\nperf trajectory: {BENCH_PATH}")
