"""Benchmark: regenerate the paper's Figure 11 (overall performance improvement).

Equation 2 CPI estimates for the headline configurations,
relative to the 64D machine at 1000 cycles.
"""


def test_bench_figure11(run_exhibit_benchmark):
    exhibit = run_exhibit_benchmark("figure11")
    assert exhibit.tables
