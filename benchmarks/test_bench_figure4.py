"""Benchmark: regenerate the paper's Figure 4 (impact of ROB size and issue constraints).

MLP over window sizes 16-256 under issue configurations A-E.
"""


def test_bench_figure4(run_exhibit_benchmark):
    exhibit = run_exhibit_benchmark("figure4")
    assert exhibit.tables
