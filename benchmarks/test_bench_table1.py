"""Benchmark: regenerate the paper's Table 1 (on-chip vs off-chip CPI components).

CPI decomposition via the cycle simulator at 200- and 1000-cycle
off-chip latencies, with Overlap_CM derived from Equation 2.
"""


def test_bench_table1(run_exhibit_benchmark):
    exhibit = run_exhibit_benchmark("table1")
    assert exhibit.tables
