"""Benchmark: regenerate the paper's Figure 9 / Table 6 (missing-load value prediction).

Last-value predictor statistics and the MLP gain of adding the
predictor to the Figure 8 machines.
"""


def test_bench_figure9_table6(run_exhibit_benchmark):
    exhibit = run_exhibit_benchmark("figure9_table6")
    assert exhibit.tables
