"""Benchmark: regenerate the paper's Figure 6 (decoupling issue window and ROB).

MLP as the ROB grows to multiples of the issue window and to
2048 entries, plus the INF machine.
"""


def test_bench_figure6(run_exhibit_benchmark):
    exhibit = run_exhibit_benchmark("figure6")
    assert exhibit.tables
