"""Shared machinery for the per-exhibit benchmarks.

Each benchmark regenerates one table/figure of the paper exactly once
(pytest-benchmark's pedantic mode with a single round — these are
experiment harnesses, not microbenchmarks), records its wall-clock
time, prints the exhibit, and archives the formatted output under
``benchmarks/results/`` for EXPERIMENTS.md.

Trace length is controlled by ``REPRO_TRACE_LEN`` (default 120,000
instructions); traces and annotations are shared across benchmarks
within the session via the experiments-layer memoisation.
"""

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def load_bench_records(path=None):
    """Read BENCH_perf.json tolerantly; returns a list of records.

    The perf harness has stamped ``git_rev`` and ``bench_schema`` on
    every record since schema 2; older records carry neither.  Rather
    than teaching each consumer to guard, this reader backfills
    ``bench_schema: 1`` and ``git_rev: None`` on legacy entries, so
    the trajectory reads uniformly across the whole history.  Missing
    or corrupt files yield an empty history — the trajectory is an
    artifact, never a failure source.
    """
    path = RESULTS_DIR / "BENCH_perf.json" if path is None else path
    try:
        with open(path) as handle:
            loaded = json.load(handle)
    except (OSError, ValueError):
        return []
    runs = loaded.get("runs") if isinstance(loaded, dict) else None
    if not isinstance(runs, list):
        return []
    records = []
    for entry in runs:
        if not isinstance(entry, dict):
            continue
        record = dict(entry)
        record.setdefault("bench_schema", 1)
        record.setdefault("git_rev", None)
        records.append(record)
    return records


@pytest.fixture
def bench_history():
    """The accumulated perf trajectory, schema-backfilled per record."""
    return load_bench_records()


@pytest.fixture
def run_exhibit_benchmark(benchmark, results_dir):
    """Run one exhibit under the benchmark timer and archive its output."""

    def runner(name, **kwargs):
        from repro.experiments import run_exhibit

        exhibit = benchmark.pedantic(
            run_exhibit, args=(name,), kwargs=kwargs, rounds=1, iterations=1
        )
        from repro.robustness.atomic import atomic_write_text

        text = exhibit.format()
        atomic_write_text(results_dir / f"{name}.txt", text + "\n")
        print()
        print(text)
        return exhibit

    return runner
