"""Shared machinery for the per-exhibit benchmarks.

Each benchmark regenerates one table/figure of the paper exactly once
(pytest-benchmark's pedantic mode with a single round — these are
experiment harnesses, not microbenchmarks), records its wall-clock
time, prints the exhibit, and archives the formatted output under
``benchmarks/results/`` for EXPERIMENTS.md.

Trace length is controlled by ``REPRO_TRACE_LEN`` (default 120,000
instructions); traces and annotations are shared across benchmarks
within the session via the experiments-layer memoisation.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def run_exhibit_benchmark(benchmark, results_dir):
    """Run one exhibit under the benchmark timer and archive its output."""

    def runner(name, **kwargs):
        from repro.experiments import run_exhibit

        exhibit = benchmark.pedantic(
            run_exhibit, args=(name,), kwargs=kwargs, rounds=1, iterations=1
        )
        from repro.robustness.atomic import atomic_write_text

        text = exhibit.format()
        atomic_write_text(results_dir / f"{name}.txt", text + "\n")
        print()
        print(text)
        return exhibit

    return runner
