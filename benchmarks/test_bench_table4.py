"""Benchmark: regenerate the paper's Table 4 (estimated vs measured CPI).

Equation 2 + MLPsim CPI estimates against cycle-simulator
measurements, including cross-configuration anchors.
"""


def test_bench_table4(run_exhibit_benchmark):
    exhibit = run_exhibit_benchmark("table4")
    assert exhibit.tables
