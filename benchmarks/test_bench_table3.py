"""Benchmark: regenerate the paper's Table 3 (MLPsim vs the cycle-accurate simulator).

The validation grid: sizes x configs x latencies; cyclesim MLP
converges to MLPsim as the off-chip latency grows.
"""


def test_bench_table3(run_exhibit_benchmark):
    exhibit = run_exhibit_benchmark("table3")
    assert exhibit.tables
