"""Benchmark: regenerate the paper's Figure 2 (clustering of misses).

Observed vs uniform cumulative inter-miss distributions for the
three workloads.
"""


def test_bench_figure2(run_exhibit_benchmark):
    exhibit = run_exhibit_benchmark("figure2")
    assert exhibit.tables
