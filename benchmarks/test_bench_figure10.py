"""Benchmark: regenerate the paper's Figure 10 (the limit study).

Perfect I-fetch / value prediction / branch prediction over the
runahead and conventional baselines.
"""


def test_bench_figure10(run_exhibit_benchmark):
    exhibit = run_exhibit_benchmark("figure10")
    assert exhibit.tables
