"""Ablation benchmark: MSHR file size.

How many outstanding-miss entries the measured MLP needs —
the paper implicitly assumes this resource is never the bottleneck.
"""


def test_ablation_mshr(benchmark, results_dir):
    from repro.experiments.ablations import run_ablation

    exhibit = benchmark.pedantic(
        run_ablation, args=("mshr",), rounds=1, iterations=1
    )
    text = exhibit.format()
    (results_dir / "ablation_mshr.txt").write_text(text + "\n")
    print()
    print(text)
    assert exhibit.tables
