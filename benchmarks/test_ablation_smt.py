"""Ablation benchmark: multithreaded MLP (the Section 7 future work).

Composes 1/2/4 instances of each workload onto one SMT core with the
epoch-timeline model and reports aggregate MLP and throughput gain,
for conventional and runahead per-thread machines.
"""


def test_ablation_smt(benchmark, results_dir):
    from repro.core.config import MachineConfig
    from repro.core.smt import profile_workload, simulate_smt
    from repro.experiments.common import (
        DISPLAY_NAMES,
        Exhibit,
        WORKLOAD_NAMES,
        get_annotated,
    )

    def run():
        rows = []
        for name in WORKLOAD_NAMES:
            profiles = [
                profile_workload(
                    get_annotated(name, seed=1234 + 7 * thread),
                    MachineConfig.named("64C"),
                    workload=f"{name}#{thread}",
                )
                for thread in range(4)
            ]
            row = [DISPLAY_NAMES[name]]
            for threads in (1, 2, 4):
                result = simulate_smt(profiles[:threads])
                row.extend([result.mlp, result.speedup_vs_serial])
            rows.append(row)
        return Exhibit(
            name="Ablation: SMT",
            title="Aggregate MLP and throughput of 1/2/4 threads per core",
            tables=[
                (
                    None,
                    [
                        "Benchmark",
                        "MLP x1", "gain x1",
                        "MLP x2", "gain x2",
                        "MLP x4", "gain x4",
                    ],
                    rows,
                )
            ],
            notes=[
                "SMT overlaps *different threads'* epochs: aggregate MLP"
                " scales with thread count while per-thread MLP is"
                " untouched — the multithreaded-MLP study the paper's"
                " Section 7 proposes",
            ],
        )

    exhibit = benchmark.pedantic(run, rounds=1, iterations=1)
    text = exhibit.format()
    (results_dir / "ablation_smt.txt").write_text(text + "\n")
    print()
    print(text)
    assert exhibit.tables
