"""Ablation benchmark: commercial vs scientific workloads.

The paper's Section 1 contrasts commercial applications (irregular,
unprefetchable misses) with scientific/streaming ones; this ablation
measures that contrast with the ``streaming`` workload next to the
paper's three.
"""


def test_ablation_intro_contrast(benchmark, results_dir):
    from repro.experiments.ablations import run_ablation

    exhibit = benchmark.pedantic(
        run_ablation, args=("intro_contrast",), rounds=1, iterations=1
    )
    text = exhibit.format()
    (results_dir / "ablation_intro_contrast.txt").write_text(text + "\n")
    print()
    print(text)
    assert exhibit.tables
