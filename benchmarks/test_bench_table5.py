"""Benchmark: regenerate the paper's Table 5 (MLP of in-order issue).

Stall-on-miss and stall-on-use machines against the default
out-of-order 64C machine.
"""


def test_bench_table5(run_exhibit_benchmark):
    exhibit = run_exhibit_benchmark("table5")
    assert exhibit.tables
