"""Benchmark: regenerate the paper's Figure 5 (factors inhibiting further MLP).

Per-epoch inhibitor breakdown over the size/config grid.
"""


def test_bench_figure5(run_exhibit_benchmark):
    exhibit = run_exhibit_benchmark("figure5")
    assert exhibit.tables
