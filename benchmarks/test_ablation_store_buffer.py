"""Ablation benchmark: store buffer.

Store MLP and the cost of finite store buffering: the 'store MLP'
future work the paper names in Section 7.
"""


def test_ablation_store_buffer(benchmark, results_dir):
    from repro.experiments.ablations import run_ablation

    exhibit = benchmark.pedantic(
        run_ablation, args=("store_buffer",), rounds=1, iterations=1
    )
    text = exhibit.format()
    (results_dir / "ablation_store_buffer.txt").write_text(text + "\n")
    print()
    print(text)
    assert exhibit.tables
