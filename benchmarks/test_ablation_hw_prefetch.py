"""Ablation benchmark: conventional hardware prefetching.

The paper's premise (Section 1) is that commercial access patterns are
not amenable to conventional prefetching; this replays each workload
with next-line and PC-stride prefetchers and measures coverage and
accuracy.
"""


def test_ablation_hw_prefetch(benchmark, results_dir):
    from repro.experiments.ablations import run_ablation

    exhibit = benchmark.pedantic(
        run_ablation, args=("hw_prefetch",), rounds=1, iterations=1
    )
    text = exhibit.format()
    (results_dir / "ablation_hw_prefetch.txt").write_text(text + "\n")
    print()
    print(text)
    assert exhibit.tables
