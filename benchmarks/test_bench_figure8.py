"""Benchmark: regenerate the paper's Figure 8 (impact of runahead execution).

Runahead against 64-entry machines with 64- and 256-entry ROBs,
and the INF reference.
"""


def test_bench_figure8(run_exhibit_benchmark):
    exhibit = run_exhibit_benchmark("figure8")
    assert exhibit.tables
