"""Ablation benchmark: slow unresolvable-branch predictor.

Section 3.2.4 suggests a slow-but-accurate predictor for
miss-dependent branches; this maps its accuracy to MLP.
"""


def test_ablation_slow_bp(benchmark, results_dir):
    from repro.experiments.ablations import run_ablation

    exhibit = benchmark.pedantic(
        run_ablation, args=("slow_bp",), rounds=1, iterations=1
    )
    text = exhibit.format()
    (results_dir / "ablation_slow_bp.txt").write_text(text + "\n")
    print()
    print(text)
    assert exhibit.tables
