"""Ablation benchmark: runahead distance.

Section 5.4.1 caps runahead at 2048 instructions and notes the real
bound is the off-chip latency; this sweep finds each workload's
saturation point.
"""


def test_ablation_runahead_distance(benchmark, results_dir):
    from repro.experiments.ablations import run_ablation

    exhibit = benchmark.pedantic(
        run_ablation, args=("runahead_distance",), rounds=1, iterations=1
    )
    text = exhibit.format()
    (results_dir / "ablation_runahead_distance.txt").write_text(text + "\n")
    print()
    print(text)
    assert exhibit.tables
